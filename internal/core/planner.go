package core

// The oracle query planner: the only sanctioned path from the attack to
// oracle.Interface (enforced by the `queryseam` dnnlint analyzer). The
// planner exists because a remote oracle pays per round-trip, not per row:
// QueryBatch evaluates any number of rows in one round, so every multi-point
// probe — the three points of a second difference, the kink+background pair
// of a validation vote — should travel together, and concurrent probes from
// parallel validation votes or error-correction candidates should share a
// batch. Three mechanisms, layered:
//
//  1. multi: a probe group issued as one QueryBatch with the rows in the
//     exact order the scalar path would have queried them, so values and
//     query counts are bit-identical by construction. On by default;
//     cfg.DisablePlanner restores the sequential scalar path (the
//     equivalence test pins the two paths against each other).
//  2. coalescer: a cross-goroutine micro-batcher. Inside a withCoalescer
//     region (validation votes, correction candidates), probe groups from
//     concurrent workers are merged into one oracle batch, bounded by a row
//     cap and a flush window. Row values are unaffected — the oracle
//     evaluates rows independently — only the round count shrinks.
//  3. probeMemo (opt-in, cfg.ProbeCache): a content-addressed cache serving
//     repeat points without touching the oracle. Changes query counts, so
//     it is never on by default.
//
// queryRetry/queryBatchRetry, the bounded-retry policy on a bare Interface,
// live here too so the lint seam is one file.

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dnnlock/internal/obs"
	"dnnlock/internal/oracle"
	"dnnlock/internal/tensor"
)

// critStats accumulates critical-point search effort: rounds (sequential
// narrowing steps, each a batch of probes that could ship together) and
// probes (point evaluations). New points cfg.critStats at the attack's
// instance; the search code in critical.go reports through the pointer.
type critStats struct {
	rounds atomic.Int64
	probes atomic.Int64
}

// count records one narrowing round of n probes. Nil-safe: a bare Config
// (direct searchZero calls in tests) carries no stats sink.
func (s *critStats) count(n int64) {
	if s == nil {
		return
	}
	s.rounds.Add(1)
	s.probes.Add(n)
}

// query asks the oracle for one point, retrying transient failures up to
// cfg.QueryRetries times. A clean oracle never errors, so this path adds
// nothing to the paper's reproduction; against a degraded one it returns the
// terminal error (budget exhaustion, device fault) for the caller to
// propagate out of Run. sp, when non-nil, is the caller's detail span: it
// counts every attempt and retry (it never receives the phase span itself —
// phase query counts come from the oracle-counter delta in trackProc, and
// double counting there would corrupt the Figure 3 rollup).
//
// Inside a withCoalescer region the point rides a shared batch, so
// concurrent single-point callers (directCompare across correction
// candidates) split one round-trip.
func (a *Attack) query(sp *obs.Span, x []float64) ([]float64, error) {
	var key string
	if a.memo != nil {
		key = probeKey(x)
		if y, ok := a.memo.get(key); ok {
			return y, nil
		}
	}
	var y []float64
	var err error
	if c := a.coal.Load(); c != nil {
		y, err = c.single(sp, x)
	} else {
		y, err = queryRetry(a.orc, x, a.cfg.QueryRetries, sp)
	}
	if err == nil && a.memo != nil {
		a.memo.put(key, y)
	}
	return y, err
}

// queryBatch asks the oracle for a bulk labelling batch (the learning
// attack's random inputs). Bulk batches are already one round each and far
// above the coalescer's row cap, so they go straight to the retry seam.
func (a *Attack) queryBatch(sp *obs.Span, x *tensor.Matrix) (*tensor.Matrix, error) {
	return queryBatchRetry(a.orc, x, a.cfg.QueryRetries, sp)
}

// multi issues every row of x as one probe group: one oracle round, rows
// answered in order, result rows aligned with input rows. The returned
// matrix is pooled and owned by the caller. The rows must be ordered exactly
// as the scalar path would have queried them — that ordering is what makes
// the planner bit-identical under an input-addressed noisy oracle.
func (a *Attack) multi(sp *obs.Span, x *tensor.Matrix) (*tensor.Matrix, error) {
	if a.cfg.DisablePlanner {
		return a.multiScalar(sp, x)
	}
	if a.memo != nil {
		return a.multiMemo(sp, x)
	}
	return a.multiDirect(sp, x)
}

// multiDirect sends the group to the active coalescer, or straight to the
// retry seam as its own batch.
func (a *Attack) multiDirect(sp *obs.Span, x *tensor.Matrix) (*tensor.Matrix, error) {
	if c := a.coal.Load(); c != nil {
		return c.submit(sp, x)
	}
	return queryBatchRetry(a.orc, x, a.cfg.QueryRetries, sp)
}

// multiScalar is the pre-planner reference path: each row is one Query call
// in row order. Kept behind cfg.DisablePlanner so the equivalence test can
// pin the planner against it.
func (a *Attack) multiScalar(sp *obs.Span, x *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Rows == 0 {
		return tensor.GetMatrix(0, 0), nil
	}
	var out *tensor.Matrix
	for i := 0; i < x.Rows; i++ {
		y, err := queryRetry(a.orc, x.Row(i), a.cfg.QueryRetries, sp)
		if err != nil {
			tensor.PutMatrix(out) // nil-safe before the first row lands
			return nil, err
		}
		if out == nil {
			out = tensor.GetMatrix(x.Rows, len(y))
		}
		out.SetRow(i, y)
	}
	return out, nil
}

// multiMemo is multi with the probe memo in front: cached rows are filled
// from the memo, missing rows (deduplicated within the group) are fetched
// in one round, and the fresh answers are cached for the next candidate.
func (a *Attack) multiMemo(sp *obs.Span, x *tensor.Matrix) (*tensor.Matrix, error) {
	n := x.Rows
	if n == 0 {
		return tensor.GetMatrix(0, 0), nil
	}
	keys := make([]string, n)
	cached := make([][]float64, n)
	uniq := make([]int, 0, n)         // representative input row per distinct missing point
	missAt := make(map[string]int, n) // probe key -> row index into the miss batch
	for i := 0; i < n; i++ {
		keys[i] = probeKey(x.Row(i))
		if y, ok := a.memo.get(keys[i]); ok {
			cached[i] = y
			continue
		}
		if _, dup := missAt[keys[i]]; !dup {
			missAt[keys[i]] = len(uniq)
			uniq = append(uniq, i)
		}
	}
	var ym *tensor.Matrix
	if len(uniq) > 0 {
		xm := tensor.GetMatrix(len(uniq), x.Cols)
		for k, i := range uniq {
			xm.SetRow(k, x.Row(i))
		}
		var err error
		ym, err = a.multiDirect(sp, xm)
		tensor.PutMatrix(xm)
		if err != nil {
			return nil, err
		}
		for k, i := range uniq {
			a.memo.put(keys[i], ym.Row(k))
		}
	}
	cols := 0
	if ym != nil {
		cols = ym.Cols
	} else {
		cols = len(cached[0])
	}
	out := tensor.GetMatrix(n, cols)
	for i := 0; i < n; i++ {
		if cached[i] != nil {
			out.SetRow(i, cached[i])
		} else {
			out.SetRow(i, ym.Row(missAt[keys[i]]))
		}
	}
	tensor.PutMatrix(ym) // nil-safe when every row was cached
	return out, nil
}

// queryRetry implements the bounded-retry policy on a bare Interface,
// counting attempts and retries on the (nil-safe) span.
func queryRetry(orc oracle.Interface, x []float64, retries int, sp *obs.Span) ([]float64, error) {
	var err error
	for t := 0; t <= retries; t++ {
		if t > 0 {
			sp.AddRetry()
		}
		sp.AddQueries(1)
		var y []float64
		y, err = orc.Query(x)
		if err == nil {
			return y, nil
		}
		if !errors.Is(err, oracle.ErrTransient) {
			return nil, err
		}
	}
	return nil, err
}

// queryBatchRetry is queryRetry for batches.
func queryBatchRetry(orc oracle.Interface, x *tensor.Matrix, retries int, sp *obs.Span) (*tensor.Matrix, error) {
	var err error
	for t := 0; t <= retries; t++ {
		if t > 0 {
			sp.AddRetry()
		}
		sp.AddQueries(int64(x.Rows))
		var y *tensor.Matrix
		y, err = orc.QueryBatch(x)
		if err == nil {
			return y, nil
		}
		tensor.PutMatrix(y) // nil on error; nil-safe release keeps the path visibly balanced
		if !errors.Is(err, oracle.ErrTransient) {
			return nil, err
		}
	}
	return nil, err
}

// --- coalescer -------------------------------------------------------------

const (
	// coalMaxRows caps a merged batch. Votes contribute 3–6 rows each, so
	// 64 rows merge ~10–20 concurrent probe groups — comfortably above the
	// worker counts the attack runs with.
	coalMaxRows = 64
	// coalFlushWindow bounds how long the collector waits for more groups
	// after the first arrives. It only matters when the in-flight-requester
	// count is racing upward; the common flush trigger is "every currently
	// waiting requester is aboard", which fires immediately.
	coalFlushWindow = 100 * time.Microsecond
)

// coalResp carries one requester's slice of a merged batch. out is pooled
// and owned by the requester.
type coalResp struct {
	out *tensor.Matrix
	err error
}

// coalReq is one probe group waiting to ride a shared oracle round. rows is
// borrowed from the requester until resp is delivered.
type coalReq struct {
	rows *tensor.Matrix
	sp   *obs.Span
	resp chan coalResp
}

// coalescer merges probe groups from concurrent goroutines into shared
// oracle batches. One collector goroutine owns the batching; requesters
// block on their response channel, so a request's lifetime never outlives
// the withCoalescer region that issued it.
type coalescer struct {
	a       *Attack
	reqs    chan *coalReq
	waiting atomic.Int64 // requesters between submit-entry and response
	done    sync.WaitGroup

	batches atomic.Int64 // oracle rounds issued (coalesced batches)
	groups  atomic.Int64 // probe groups served
}

func newCoalescer(a *Attack) *coalescer {
	c := &coalescer{a: a, reqs: make(chan *coalReq, a.cfg.Workers)}
	c.done.Add(1)
	//lint:ignore nakedgo single collector goroutine, joined by stop() through the WaitGroup before withCoalescer returns
	go c.collect()
	return c
}

// submit sends one probe group and blocks for its slice of the merged
// response. rows is only read until the response arrives.
func (c *coalescer) submit(sp *obs.Span, rows *tensor.Matrix) (*tensor.Matrix, error) {
	req := &coalReq{rows: rows, sp: sp, resp: make(chan coalResp, 1)}
	c.waiting.Add(1)
	c.reqs <- req
	//lint:ignore determinism private single-producer response channel: exactly one value ever arrives, so receive order cannot vary
	r := <-req.resp
	c.waiting.Add(-1)
	return r.out, r.err
}

// single is submit for one point, unpacking the 1-row group.
func (c *coalescer) single(sp *obs.Span, x []float64) ([]float64, error) {
	rows := tensor.GetMatrix(1, len(x))
	rows.SetRow(0, x)
	out, err := c.submit(sp, rows)
	tensor.PutMatrix(rows)
	if err != nil {
		return nil, err
	}
	y := append([]float64(nil), out.Row(0)...)
	tensor.PutMatrix(out)
	return y, nil
}

// collect is the collector loop: gather groups until the batch is full,
// every currently waiting requester is aboard, or the flush window expires;
// then issue one oracle round and split the response.
func (c *coalescer) collect() {
	defer c.done.Done()
	for {
		//lint:ignore determinism batch composition is timing-dependent by design; rows are evaluated independently by the oracle, so merge boundaries cannot change any value or query count
		first, ok := <-c.reqs
		if !ok {
			return
		}
		batch := []*coalReq{first}
		rows := first.rows.Rows
		timer := time.NewTimer(coalFlushWindow)
	gather:
		for rows < coalMaxRows && int64(len(batch)) < c.waiting.Load() {
			//lint:ignore determinism batch composition is timing-dependent by design; rows are evaluated independently by the oracle, so merge boundaries cannot change any value or query count
			select {
			//lint:ignore determinism same justification: the receive only decides which requests share a batch
			case r, ok := <-c.reqs:
				if !ok {
					break gather
				}
				batch = append(batch, r)
				rows += r.rows.Rows
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		c.flush(batch, rows)
	}
}

// flush issues one merged oracle round for the gathered groups, retrying the
// whole batch on transient failures (each requester's detail span counts its
// own rows per attempt, mirroring what its private retries would have
// counted), then splits the pooled response back per request.
func (c *coalescer) flush(batch []*coalReq, rows int) {
	c.batches.Add(1)
	c.groups.Add(int64(len(batch)))
	x := tensor.GetMatrix(rows, batch[0].rows.Cols)
	at := 0
	for _, r := range batch {
		for i := 0; i < r.rows.Rows; i++ {
			x.SetRow(at, r.rows.Row(i))
			at++
		}
	}
	var y *tensor.Matrix
	var err error
	for t := 0; t <= c.a.cfg.QueryRetries; t++ {
		if t > 0 {
			for _, r := range batch {
				r.sp.AddRetry()
			}
		}
		for _, r := range batch {
			r.sp.AddQueries(int64(r.rows.Rows))
		}
		y, err = c.a.orc.QueryBatch(x)
		if err == nil {
			break
		}
		tensor.PutMatrix(y) // nil on error; nil-safe
		y = nil
		if !errors.Is(err, oracle.ErrTransient) {
			break
		}
	}
	tensor.PutMatrix(x)
	if err != nil {
		// The whole round failed: every rider sees the same error. Budget
		// exhaustion is all-or-nothing at the oracle already; transient
		// faults were retried above.
		for _, r := range batch {
			r.resp <- coalResp{nil, err}
		}
		//lint:ignore poolpair y is nil here: every failing retry iteration above Put-and-niled it, and err != nil excludes the break-on-success path the path-insensitive solver also sees
		return
	}
	at = 0
	for _, r := range batch {
		out := tensor.GetMatrix(r.rows.Rows, y.Cols)
		for i := 0; i < r.rows.Rows; i++ {
			copy(out.Row(i), y.Row(at))
			at++
		}
		//lint:transfer out: ownership passes to the requester through the response channel
		r.resp <- coalResp{out, nil}
	}
	tensor.PutMatrix(y)
}

// stop closes the intake and joins the collector. Callers guarantee every
// submit has returned (the region's goroutines are joined first).
func (c *coalescer) stop() {
	close(c.reqs)
	c.done.Wait()
}

// withCoalescer runs f with cross-goroutine micro-batching active: probe
// groups issued by f's goroutines (through query/multi) share oracle
// rounds. Reentrant — a region opened inside another (validation inside
// error correction) reuses the outer coalescer. The coalescer is fully
// drained and stopped before withCoalescer returns, so trackProc's
// round-counter deltas stay exact.
func (a *Attack) withCoalescer(f func()) {
	if a.cfg.DisablePlanner || a.coal.Load() != nil {
		f()
		return
	}
	c := newCoalescer(a)
	if !a.coal.CompareAndSwap(nil, c) {
		c.stop()
		f()
		return
	}
	f()
	a.coal.Store(nil)
	c.stop()
}

// --- probe memo ------------------------------------------------------------

// probeMemo is the content-addressed probe cache behind cfg.ProbeCache:
// exact input bytes -> cached oracle response. Error-correction candidates
// repeatedly probe the same critical points (the white-box prefix they
// search under is mostly shared), and a cached answer costs neither a query
// nor a round. Entries live for the attack's lifetime — runs are bounded —
// and responses are copied both ways so no caller aliases the cache.
type probeMemo struct {
	mu     sync.Mutex
	m      map[string][]float64
	hits   atomic.Int64
	misses atomic.Int64
}

func newProbeMemo() *probeMemo {
	return &probeMemo{m: make(map[string][]float64)}
}

// probeKey is the exact content address of a probe point: the little-endian
// bytes of each coordinate. Bitwise equality is the right notion here —
// the attack re-probes literally identical vectors, not nearby ones.
func probeKey(x []float64) string {
	b := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return string(b)
}

func (m *probeMemo) get(key string) ([]float64, bool) {
	m.mu.Lock()
	y, ok := m.m[key]
	m.mu.Unlock()
	if !ok {
		m.misses.Add(1)
		return nil, false
	}
	m.hits.Add(1)
	return append([]float64(nil), y...), true
}

func (m *probeMemo) put(key string, y []float64) {
	m.mu.Lock()
	if _, dup := m.m[key]; !dup {
		m.m[key] = append([]float64(nil), y...)
	}
	m.mu.Unlock()
}
