// Frobs the widgets without naming the package first.
package badprefix // want "package comment should start with \"Package badprefix \""

const Placeholder = 1
