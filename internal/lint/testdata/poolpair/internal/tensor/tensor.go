// Package tensor stubs the workspace-pool surface of the real
// dnnlock/internal/tensor for the poolpair golden tests: same import path,
// same names, no behavior.
package tensor

type Matrix struct {
	Rows, Cols int
	Data       []float64
}

func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

func GetMatrix(rows, cols int) *Matrix { return New(rows, cols) }

func GetMatrixZero(rows, cols int) *Matrix { return New(rows, cols) }

func GetVec(n int) []float64 { return make([]float64, n) }

func PutMatrix(ms ...*Matrix) {}

func PutVec(v []float64) {}

type Arena32 struct {
	buf []float32
}

func GetArena32() *Arena32 { return &Arena32{} }

func PutArena32(a *Arena32) {}

func (a *Arena32) Alloc(n int) []float32 { return make([]float32, n) }
