// Package documented is the pkgdoc golden fixture for a correctly
// documented package: present, and opening with the canonical form.
package documented

// Placeholder keeps the package non-empty.
const Placeholder = 1
