package dataset

import (
	"math/rand"
	"testing"

	"dnnlock/internal/tensor"
)

func TestDigitsShape(t *testing.T) {
	d := Digits(50, 1)
	if d.Len() != 50 || d.InputSize() != 784 || d.Classes != 10 {
		t.Fatalf("bad digits geometry: %+v", d)
	}
	for _, y := range d.Y {
		if y < 0 || y >= 10 {
			t.Fatalf("label out of range: %d", y)
		}
	}
}

func TestShapesShape(t *testing.T) {
	d := Shapes(30, 2)
	if d.Len() != 30 || d.InputSize() != 3*16*16 {
		t.Fatalf("bad shapes geometry: %+v", d)
	}
}

func TestDeterminism(t *testing.T) {
	a := Digits(20, 7)
	b := Digits(20, 7)
	if !tensor.Equal(a.X, b.X, 0) {
		t.Fatal("same seed must give identical data")
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ")
		}
	}
	c := Digits(20, 8)
	if tensor.Equal(a.X, c.X, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestSplit(t *testing.T) {
	d := Digits(100, 3)
	tr, te := d.Split(0.8)
	if tr.Len() != 80 || te.Len() != 20 {
		t.Fatalf("split sizes %d/%d", tr.Len(), te.Len())
	}
	// First test row must equal row 80 of the original.
	if !tensor.Equal(
		tensor.FromSlice(1, d.X.Cols, te.X.Row(0)),
		tensor.FromSlice(1, d.X.Cols, d.X.Row(80)), 0) {
		t.Fatal("split misaligned")
	}
}

func TestSplitFullFraction(t *testing.T) {
	d := Digits(10, 4)
	tr, te := d.Split(1.0)
	if tr.Len() != 10 || te.Len() != 0 {
		t.Fatalf("full split sizes %d/%d", tr.Len(), te.Len())
	}
}

func TestClassSeparability(t *testing.T) {
	// A nearest-class-mean classifier must beat chance by a wide margin,
	// otherwise the synthetic data cannot support the paper's accuracy
	// columns.
	d := Digits(600, 5)
	tr, te := d.Split(0.7)
	means := make([][]float64, d.Classes)
	counts := make([]int, d.Classes)
	for k := range means {
		means[k] = make([]float64, d.InputSize())
	}
	for i := 0; i < tr.Len(); i++ {
		y := tr.Y[i]
		tensor.AXPY(1, tr.X.Row(i), means[y])
		counts[y]++
	}
	for k := range means {
		if counts[k] > 0 {
			for j := range means[k] {
				means[k][j] /= float64(counts[k])
			}
		}
	}
	correct := 0
	for i := 0; i < te.Len(); i++ {
		best, bestD := -1, 0.0
		for k := range means {
			dv := tensor.VecSub(te.X.Row(i), means[k])
			dist := tensor.Dot(dv, dv)
			if best == -1 || dist < bestD {
				best, bestD = k, dist
			}
		}
		if best == te.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(te.Len())
	// The generator deliberately buries a faint class delta under a shared
	// background (so that locking matters, DESIGN.md §4); nearest-mean only
	// needs to beat 10-class chance decisively — MLPs reach ~94%.
	if acc < 0.3 {
		t.Fatalf("nearest-mean accuracy %.3f < 0.3: classes not separable enough", acc)
	}
}

func TestUniformInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := UniformInputs(40, 7, 2.5, rng)
	defer tensor.PutMatrix(x)
	if x.Rows != 40 || x.Cols != 7 {
		t.Fatal("bad shape")
	}
	for _, v := range x.Data {
		if v < -2.5 || v > 2.5 {
			t.Fatalf("out of range: %v", v)
		}
	}
}

func TestCustomGeometry(t *testing.T) {
	d := Custom(10, 1, 4, 2, 5, 6)
	if d.InputSize() != 60 || d.Classes != 4 {
		t.Fatalf("custom geometry wrong: %+v", d)
	}
}
