package farm

import "container/heap"

// The event engine: a binary min-heap of timestamped events on a virtual
// clock, decoupled from real time entirely. Handlers are pure state
// transitions over simulator data (device pipeline slots, round state) and
// may schedule follow-up events; they never block, touch real clocks, or
// perform I/O, so pumping the queue to a fixed point is cheap and
// deterministic for a given schedule order. The Transport serializes all
// access under its own mutex — the engine itself carries no lock.

// Time is a point on the farm's virtual clock, in nanoseconds since the
// simulation epoch. It is the unit of every latency, transfer, and service
// figure in this package; the harness converts final horizons back to
// time.Duration for reporting.
type Time int64

// event is one scheduled state transition. seq breaks timestamp ties in
// schedule order, so simultaneous events fire FIFO and the pump order is
// reproducible.
type event struct {
	at   Time
	seq  uint64
	fire func(now Time)
}

// eventQueue is the binary heap ordering events by (timestamp, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// sim is the event scheduler. fired tracks the highest timestamp any event
// has fired at — a diagnostic high-water mark, not a gate: a new round may
// legitimately schedule its send leg earlier than already-fired events
// (concurrent rounds overlap on the virtual clock), and the heap simply
// orders whatever is pending.
type sim struct {
	q     eventQueue
	seq   uint64
	fired Time
}

// schedule enqueues fire to run at the virtual instant at.
func (s *sim) schedule(at Time, fire func(now Time)) {
	s.seq++
	heap.Push(&s.q, &event{at: at, seq: s.seq, fire: fire})
}

// step fires the earliest pending event, reporting false on an empty queue.
func (s *sim) step() bool {
	if len(s.q) == 0 {
		return false
	}
	e := heap.Pop(&s.q).(*event)
	if e.at > s.fired {
		s.fired = e.at
	}
	e.fire(e.at)
	return true
}

// runUntil pumps events in timestamp order until done reports true. Every
// round's event chain is self-propelling (each handler schedules the next
// leg), so the target condition is always reachable from the pending queue;
// a drained queue before then is a simulator bug, not a caller error.
func (s *sim) runUntil(done func() bool) {
	for !done() {
		if !s.step() {
			panic("farm: event queue drained before the awaited delivery")
		}
	}
}
