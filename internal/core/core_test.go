package core

import (
	"math"
	"math/rand"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/nn"
	"dnnlock/internal/oracle"
)

// lockAndOracle locks net with cfg and returns the attack inputs.
func lockAndOracle(net *nn.Network, lcfg hpnn.Config) (*nn.Network, hpnn.LockSpec, *oracle.Oracle, hpnn.Key) {
	lm, key := hpnn.Lock(net, lcfg)
	return lm.WhiteBox(), lm.Spec, oracle.New(lm, key), key
}

func TestSearchCriticalPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := models.TinyMLP(rng)
	cfg := DefaultConfig()
	for site := 0; site < net.NumFlipSites(); site++ {
		for idx := 0; idx < 3; idx++ {
			x0, ok := searchCriticalPoint(net, site, idx, cfg, rng)
			if !ok {
				t.Fatalf("no critical point for (%d,%d)", site, idx)
			}
			u := postAct(net, x0, site, idx)
			if math.Abs(u) > math.Sqrt(cfg.CriticalTol) {
				t.Fatalf("critical point residual %g", u)
			}
		}
	}
}

func TestSearchCriticalPointRespectsPrefixKeys(t *testing.T) {
	// Flipping a first-layer bit changes the second-layer hyperplanes;
	// search on the keyed network must still find exact witnesses.
	rng := rand.New(rand.NewSource(2))
	net := models.TinyMLP(rng)
	net.Flips()[0].SetBit(3, true)
	cfg := DefaultConfig()
	x0, ok := searchCriticalPoint(net, 1, 2, cfg, rng)
	if !ok {
		t.Fatal("no critical point")
	}
	if u := postAct(net, x0, 1, 2); math.Abs(u) > 1e-7 {
		t.Fatalf("residual %g", u)
	}
}

func TestKeyBitInferenceOnContractiveMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := models.TinyMLP(rng)
	white, spec, orc, key := lockAndOracle(net, hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 8, Rng: rng,
	})
	a := New(white, spec, orc, DefaultConfig())
	// Attack the first-layer bits only (prefix is empty, so inference
	// should succeed outright on this contractive network).
	bySite := spec.SiteBits()
	for _, si := range bySite[0] {
		got, err := a.keyBitInference(si, rand.New(rand.NewSource(int64(si)+100)))
		if err != nil {
			t.Fatalf("bit %d: %v", si, err)
		}
		if got == bitBottom {
			t.Fatalf("bit %d: inference returned ⊥ on a contractive MLP", si)
		}
		want := bitZero
		if key[si] {
			want = bitOne
		}
		if got != want {
			t.Fatalf("bit %d: inferred %d, want %d", si, got, want)
		}
	}
}

func TestKeyBitInferenceSecondLayerNeedsPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := models.TinyMLP(rng)
	white, spec, orc, key := lockAndOracle(net, hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 8, Rng: rng,
	})
	a := New(white, spec, orc, DefaultConfig())
	bySite := spec.SiteBits()
	// Write the true first-layer bits (as Algorithm 2 would have).
	for _, si := range bySite[0] {
		a.setBit(si, key[si], 1, OriginAlgebraic)
	}
	bottoms := 0
	for _, si := range bySite[1] {
		got, err := a.keyBitInference(si, rand.New(rand.NewSource(int64(si)+200)))
		if err != nil {
			t.Fatalf("bit %d: %v", si, err)
		}
		if got == bitBottom {
			// ⊥ is a legal outcome (mask-dependent rank loss, §3.4); the
			// learning attack would pick the bit up. It must stay rare and
			// inference must never return a wrong value.
			bottoms++
			continue
		}
		want := bitZero
		if key[si] {
			want = bitOne
		}
		if got != want {
			t.Fatalf("layer-2 bit %d: inferred %d, want %d", si, got, want)
		}
	}
	if bottoms > len(bySite[1])/2 {
		t.Fatalf("%d of %d layer-2 bits returned ⊥", bottoms, len(bySite[1]))
	}
}

func TestPreimageExpansiveReturnsFalse(t *testing.T) {
	// An expansive first layer (in 6 < out 12) has no pre-image for most
	// basis vectors.
	rng := rand.New(rand.NewSource(5))
	net := nn.NewNetwork(
		nn.NewDense(6, 12).InitHe(rng), nn.NewFlip(12), nn.NewReLU(12),
		nn.NewDense(12, 4).InitHe(rng),
	)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 6, Rng: rng})
	orc := oracle.New(lm, key)
	a := New(lm.WhiteBox(), lm.Spec, orc, DefaultConfig())
	x0, ok := searchCriticalPoint(a.white, 0, lm.Spec.Neurons[0].Index, a.cfg, rng)
	if !ok {
		t.Fatal("no critical point")
	}
	if _, ok := a.preimage(x0, 0, lm.Spec.Neurons[0].Index); ok {
		t.Fatal("pre-image should not exist in an expansive layer")
	}
}

func TestCombinations(t *testing.T) {
	c := combinations(4, 2)
	if len(c) != 6 {
		t.Fatalf("C(4,2) = %d", len(c))
	}
	if c[0][0] != 0 || c[0][1] != 1 || c[5][0] != 2 || c[5][1] != 3 {
		t.Fatalf("combination order wrong: %v", c)
	}
	if len(combinations(3, 3)) != 1 {
		t.Fatal("C(3,3) != 1")
	}
	if len(combinations(5, 1)) != 5 {
		t.Fatal("C(5,1) != 5")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	d := c.withDefaults()
	if d.Epsilon == 0 || d.Workers == 0 || d.LearnQueries == 0 {
		t.Fatalf("defaults not applied: %+v", d)
	}
	// Explicit values survive.
	c.Epsilon = 0.5
	if got := c.withDefaults().Epsilon; got != 0.5 {
		t.Fatalf("explicit epsilon overwritten: %v", got)
	}
}

func TestBitOriginString(t *testing.T) {
	for o, want := range map[BitOrigin]string{
		OriginAlgebraic: "algebraic", OriginLearning: "learning",
		OriginCorrection: "correction", OriginUnknown: "unknown",
	} {
		if o.String() != want {
			t.Fatalf("String(%d) = %q", o, o.String())
		}
	}
}
