package lint

import (
	"go/ast"
	"go/token"
)

// cfg.go — a control-flow graph over go/ast function bodies plus a small
// forward dataflow solver. This is the flow layer the path-sensitive
// analyzers (poolpair, errflow, spanpair) share: each builds per-node
// gen/kill sets over the statement elements of a CFG and asks the solver
// which facts can reach which program points.
//
// A Block holds the statements (and controlling expressions: if/for
// conditions, switch tags, case expressions, range operands) that execute
// straight-line, in order. Edges follow Go's control flow: if/else arms,
// loop back-edges and exits, switch/type-switch/select dispatch,
// fallthrough, labeled break/continue, and goto. return edges to Exit;
// panic, os.Exit, runtime.Goexit, log.Fatal*, and testing's
// Fatal/FailNow/Skip family terminate a block with no successors (the
// function does not resume, so no obligation survives them). Falling off
// the closing brace is a distinguished edge (FallsOff) so analyzers can
// report "leaks on the fall-through path" separately from "leaks on this
// return".
//
// The builder is purely syntactic: it needs no type information, matches
// terminating calls by name, and never fails — unreachable statements land
// in blocks with Reachable=false rather than being dropped, so analyzers
// still see every node.

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// FallsOff is the block whose edge to Exit represents control flowing
	// off the closing brace; nil when every path returns, panics, or loops
	// forever.
	FallsOff *Block
	// Defers lists every defer statement of the region in source order
	// (nested function literals excluded — they are their own regions).
	Defers []*ast.DeferStmt
}

// Block is one basic block: nodes execute in order, then control moves to
// one of Succs.
type Block struct {
	Index     int
	Nodes     []ast.Node
	Succs     []*Block
	Preds     []*Block
	Reachable bool
}

// BuildCFG constructs the control-flow graph of one function body. Nested
// function literals are not traversed: each is its own region with its own
// CFG.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &cfgBuilder{cfg: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.scanLabels(body)
	b.cur = g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		g.FallsOff = b.cur
		b.edge(b.cur, g.Exit)
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	markReachable(g)
	return g
}

// FindNode locates the block and element index holding the innermost
// element whose source range covers pos. Returns (nil, -1) when no element
// covers it (e.g. a position inside a nested function literal).
func (g *CFG) FindNode(pos token.Pos) (*Block, int) {
	var bestB *Block
	bestI := -1
	var bestSpan token.Pos
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				span := n.End() - n.Pos()
				if bestB == nil || span < bestSpan {
					bestB, bestI, bestSpan = blk, i, span
				}
			}
		}
	}
	return bestB, bestI
}

type cfgTarget struct {
	label string
	brk   *Block // break target
	cont  *Block // continue target; nil for switch/select
}

type cfgBuilder struct {
	cfg          *CFG
	cur          *Block // nil after a terminator until the next statement
	targets      []cfgTarget
	labels       map[string]*Block
	fallTargets  []*Block // fallthrough destination stack (switch clauses)
	unreachCount int
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// emit appends a node to the current block, opening an unreachable block if
// the previous statement terminated control flow.
func (b *cfgBuilder) emit(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock() // dead code after return/break/panic
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// scanLabels pre-creates a block per label so forward gotos resolve.
func (b *cfgBuilder) scanLabels(body *ast.BlockStmt) {
	b.labels = map[string]*Block{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.LabeledStmt:
			b.labels[v.Label.Name] = b.newBlock()
		}
		return true
	})
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch v := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.BlockStmt:
		b.stmtList(v.List)
	case *ast.LabeledStmt:
		b.labeledStmt(v)
	case *ast.ReturnStmt:
		b.emit(v)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(v)
	case *ast.IfStmt:
		b.ifStmt(v)
	case *ast.ForStmt:
		b.forStmt(v, "")
	case *ast.RangeStmt:
		b.rangeStmt(v, "")
	case *ast.SwitchStmt:
		b.switchStmt(v, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(v, "")
	case *ast.SelectStmt:
		b.selectStmt(v, "")
	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, v)
		b.emit(v)
	case *ast.ExprStmt:
		b.emit(v)
		if call, ok := v.X.(*ast.CallExpr); ok && isTerminalCall(call) {
			b.cur = nil // panic/os.Exit/t.Fatal: control does not continue
		}
	default:
		// AssignStmt, DeclStmt, SendStmt, IncDecStmt, GoStmt.
		b.emit(v)
	}
}

func (b *cfgBuilder) labeledStmt(v *ast.LabeledStmt) {
	start := b.labels[v.Label.Name]
	b.edge(b.cur, start)
	b.cur = start
	switch s := v.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(s, v.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(s, v.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(s, v.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, v.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(s, v.Label.Name)
	default:
		b.stmt(v.Stmt)
	}
}

func (b *cfgBuilder) branchStmt(v *ast.BranchStmt) {
	b.emit(v)
	switch v.Tok {
	case token.BREAK:
		if t := b.findTarget(v.Label, false); t != nil {
			b.edge(b.cur, t.brk)
		}
	case token.CONTINUE:
		if t := b.findTarget(v.Label, true); t != nil {
			b.edge(b.cur, t.cont)
		}
	case token.GOTO:
		if v.Label != nil {
			b.edge(b.cur, b.labels[v.Label.Name])
		}
	case token.FALLTHROUGH:
		if n := len(b.fallTargets); n > 0 {
			b.edge(b.cur, b.fallTargets[n-1])
		}
	}
	b.cur = nil
}

// findTarget resolves break/continue to the innermost (or labeled)
// enclosing construct; needCont restricts the search to loops.
func (b *cfgBuilder) findTarget(label *ast.Ident, needCont bool) *cfgTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needCont && t.cont == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

func (b *cfgBuilder) ifStmt(v *ast.IfStmt) {
	b.stmt(v.Init)
	b.emit(v.Cond)
	cond := b.cur
	join := b.newBlock()
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmt(v.Body)
	b.edge(b.cur, join)
	if v.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(v.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(cond, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(v *ast.ForStmt, label string) {
	b.stmt(v.Init)
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	if v.Cond != nil {
		b.emit(v.Cond)
	}
	body := b.newBlock()
	join := b.newBlock()
	post := b.newBlock()
	b.edge(head, body)
	if v.Cond != nil {
		b.edge(head, join) // condition false: skip the body
	}
	b.targets = append(b.targets, cfgTarget{label: label, brk: join, cont: post})
	b.cur = body
	b.stmt(v.Body)
	b.targets = b.targets[:len(b.targets)-1]
	b.edge(b.cur, post)
	b.cur = post
	b.stmt(v.Post)
	b.edge(b.cur, head)
	b.cur = join
}

func (b *cfgBuilder) rangeStmt(v *ast.RangeStmt, label string) {
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	b.emit(v.X)
	b.emit(v.Key)
	b.emit(v.Value)
	body := b.newBlock()
	join := b.newBlock()
	b.edge(head, body)
	b.edge(head, join) // zero iterations
	b.targets = append(b.targets, cfgTarget{label: label, brk: join, cont: head})
	b.cur = body
	b.stmt(v.Body)
	b.targets = b.targets[:len(b.targets)-1]
	b.edge(b.cur, head)
	b.cur = join
}

func (b *cfgBuilder) switchStmt(v *ast.SwitchStmt, label string) {
	b.stmt(v.Init)
	b.emit(v.Tag)
	b.caseClauses(v.Body, label, true)
}

func (b *cfgBuilder) typeSwitchStmt(v *ast.TypeSwitchStmt, label string) {
	b.stmt(v.Init)
	b.emit(v.Assign)
	b.caseClauses(v.Body, label, false)
}

// caseClauses wires a (type-)switch body: head -> every clause, clauses ->
// join, fallthrough -> next clause, head -> join when there is no default.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, label string, allowFall bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	join := b.newBlock()
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, s := range body.List {
		cc := s.(*ast.CaseClause)
		clauses = append(clauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
	}
	if !hasDefault {
		b.edge(head, join) // no case matched
	}
	b.targets = append(b.targets, cfgTarget{label: label, brk: join})
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.emit(e)
		}
		if allowFall {
			var next *Block
			if i+1 < len(blocks) {
				next = blocks[i+1]
			}
			b.fallTargets = append(b.fallTargets, next)
			b.stmtList(cc.Body)
			b.fallTargets = b.fallTargets[:len(b.fallTargets)-1]
		} else {
			b.stmtList(cc.Body)
		}
		b.edge(b.cur, join)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = join
}

func (b *cfgBuilder) selectStmt(v *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	join := b.newBlock()
	b.targets = append(b.targets, cfgTarget{label: label, brk: join})
	for _, s := range v.Body.List {
		cc := s.(*ast.CommClause)
		cb := b.newBlock()
		b.edge(head, cb)
		b.cur = cb
		b.stmt(cc.Comm)
		b.stmtList(cc.Body)
		b.edge(b.cur, join)
	}
	b.targets = b.targets[:len(b.targets)-1]
	// A select without a default still takes some case (or blocks
	// forever); there is no direct head -> join edge.
	b.cur = join
}

// isTerminalCall matches calls after which control cannot resume in this
// function: the panic builtin, os.Exit, runtime.Goexit, log.Fatal*, and
// testing's Fatal/FailNow/Skip family. Matching is by name — the builder
// has no type information — which is the same trade the go vet
// unreachable-code pass makes.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		sel := fun.Sel.Name
		if x, ok := fun.X.(*ast.Ident); ok {
			switch {
			case x.Name == "os" && sel == "Exit":
				return true
			case x.Name == "runtime" && sel == "Goexit":
				return true
			case x.Name == "log" && (sel == "Fatal" || sel == "Fatalf" || sel == "Fatalln"):
				return true
			}
		}
		switch sel {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}

func markReachable(g *CFG) {
	var stack []*Block
	g.Entry.Reachable = true
	stack = append(stack, g.Entry)
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !s.Reachable {
				s.Reachable = true
				stack = append(stack, s)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Dataflow solver

// BitSet is a fixed-capacity set of small integers — the fact domain of the
// dataflow solver (one bit per tracked obligation).
type BitSet struct {
	n     int
	words []uint64
}

// NewBitSet returns an empty set over the domain [0, n).
func NewBitSet(n int) *BitSet {
	return &BitSet{n: n, words: make([]uint64, (n+63)/64)}
}

func (s *BitSet) Set(i int)      { s.words[i/64] |= 1 << (uint(i) % 64) }
func (s *BitSet) ClearBit(i int) { s.words[i/64] &^= 1 << (uint(i) % 64) }
func (s *BitSet) Has(i int) bool { return s.words[i/64]&(1<<(uint(i)%64)) != 0 }

// Fill sets every fact in the domain (the ⊤ element of a must-analysis).
func (s *BitSet) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if rem := s.n % 64; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << uint(rem)) - 1
	}
}

func (s *BitSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s *BitSet) Copy() *BitSet {
	out := &BitSet{n: s.n, words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

// UnionWith adds o's facts, reporting whether s changed.
func (s *BitSet) UnionWith(o *BitSet) bool {
	changed := false
	for i, w := range o.words {
		if nw := s.words[i] | w; nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith keeps only facts also in o, reporting whether s changed.
func (s *BitSet) IntersectWith(o *BitSet) bool {
	changed := false
	for i, w := range o.words {
		if nw := s.words[i] & w; nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// FlowProblem is a forward dataflow problem over one CFG. Facts are small
// integers; Gen and Kill give each node's effect (kill applies before gen,
// so a node that both discharges and re-creates a fact leaves it set). May
// selects the join: true unions facts over predecessors ("some path
// reaches this point with the fact"), false intersects them ("every path
// does").
type FlowProblem struct {
	CFG   *CFG
	Facts int
	May   bool
	Gen   map[ast.Node][]int
	Kill  map[ast.Node][]int
}

// FlowResult holds the fixpoint: facts entering and leaving every block.
type FlowResult struct {
	prob *FlowProblem
	In   map[*Block]*BitSet
	Out  map[*Block]*BitSet
}

// Solve iterates to a fixpoint with a worklist. Termination is guaranteed:
// transfer functions are monotone over a finite lattice (facts only flow
// one way at each join), so every In set changes at most Facts times.
func (p *FlowProblem) Solve() *FlowResult {
	res := &FlowResult{prob: p, In: map[*Block]*BitSet{}, Out: map[*Block]*BitSet{}}
	for _, b := range p.CFG.Blocks {
		in := NewBitSet(p.Facts)
		if !p.May && b != p.CFG.Entry {
			in.Fill() // ⊤ until a predecessor proves otherwise
		}
		res.In[b] = in
		res.Out[b] = p.transfer(b, in)
	}
	work := append([]*Block{}, p.CFG.Blocks...)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		in := NewBitSet(p.Facts)
		if !p.May && b != p.CFG.Entry {
			if len(b.Preds) > 0 {
				in.Fill()
			}
		}
		for _, pred := range b.Preds {
			if p.May {
				in.UnionWith(res.Out[pred])
			} else {
				in.IntersectWith(res.Out[pred])
			}
		}
		res.In[b] = in
		out := p.transfer(b, in)
		old := res.Out[b]
		same := true
		for i := range out.words {
			if out.words[i] != old.words[i] {
				same = false
				break
			}
		}
		if !same {
			res.Out[b] = out
			work = append(work, b.Succs...)
		}
	}
	return res
}

func (p *FlowProblem) transfer(b *Block, in *BitSet) *BitSet {
	out := in.Copy()
	for _, n := range b.Nodes {
		p.apply(n, out)
	}
	return out
}

func (p *FlowProblem) apply(n ast.Node, facts *BitSet) {
	for _, i := range p.Kill[n] {
		facts.ClearBit(i)
	}
	for _, i := range p.Gen[n] {
		facts.Set(i)
	}
}

// Before returns the facts holding just before element idx of block b.
func (r *FlowResult) Before(b *Block, idx int) *BitSet {
	facts := r.In[b].Copy()
	for i := 0; i < idx && i < len(b.Nodes); i++ {
		r.prob.apply(b.Nodes[i], facts)
	}
	return facts
}

// cfgOf builds (and caches) the CFG for one function body. Analyzers
// running over the same unit share the graph.
func (p *Pass) cfgOf(body *ast.BlockStmt) *CFG {
	if g, ok := p.prog.cfgs[body]; ok {
		return g
	}
	g := BuildCFG(body)
	if p.prog.cfgs == nil {
		p.prog.cfgs = map[*ast.BlockStmt]*CFG{}
	}
	p.prog.cfgs[body] = g
	return g
}
