package nn

import (
	"fmt"

	"dnnlock/internal/tensor"
)

// Network is a feed-forward stack of layers. Lockable pre-activations are
// marked by Flip layers; Flip and ReLU layers are assigned site IDs in
// network order at construction so traces and the attack can address them.
type Network struct {
	Layers []Layer

	flips []*Flip
	relus []*ReLU
}

// NewNetwork builds a network, validates the layer size chain, and
// registers flip/ReLU sites (including those inside residual blocks).
func NewNetwork(layers ...Layer) *Network {
	if len(layers) == 0 {
		panic("nn: empty network")
	}
	for i := 1; i < len(layers); i++ {
		if layers[i-1].OutSize() != layers[i].InSize() {
			panic(fmt.Sprintf("nn: layer %d (%s) outputs %d but layer %d (%s) expects %d",
				i-1, layers[i-1].Name(), layers[i-1].OutSize(), i, layers[i].Name(), layers[i].InSize()))
		}
	}
	n := &Network{Layers: layers}
	nextFlip, nextReLU := 0, 0
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			if c, ok := l.(container); ok {
				walk(c.subLayers())
				continue
			}
			if r, ok := l.(siteRegistrar); ok {
				r.registerSites(&nextFlip, &nextReLU)
				switch v := l.(type) {
				case *Flip:
					n.flips = append(n.flips, v)
				case *ReLU:
					n.relus = append(n.relus, v)
				}
			}
		}
	}
	walk(layers)
	return n
}

// InSize returns the input dimensionality P.
func (n *Network) InSize() int { return n.Layers[0].InSize() }

// OutSize returns the output dimensionality Q.
func (n *Network) OutSize() int { return n.Layers[len(n.Layers)-1].OutSize() }

// Flips returns the flip layers in site-ID order.
func (n *Network) Flips() []*Flip { return n.flips }

// ReLUs returns the ReLU layers in site-ID order.
func (n *Network) ReLUs() []*ReLU { return n.relus }

// NumFlipSites returns the number of flip sites.
func (n *Network) NumFlipSites() int { return len(n.flips) }

// Forward computes the logits for one example. Safe for concurrent use as
// long as no goroutine mutates parameters or flip signs. Intermediate
// activations are staged in pooled workspaces; the returned logits are a
// fresh slice the caller owns.
func (n *Network) Forward(x []float64) []float64 {
	y, pooled := forwardVecChain(n.Layers, x)
	if !pooled {
		return y
	}
	out := append([]float64(nil), y...)
	tensor.PutVec(y)
	return out
}

func (n *Network) newTrace() *Trace {
	return &Trace{
		Pre:      make([][]float64, len(n.flips)),
		Post:     make([][]float64, len(n.flips)),
		Patterns: make([][]bool, len(n.relus)),
		ReluIn:   make([][]float64, len(n.relus)),
	}
}

// forwardTrace drives the trace-recording pass over pooled intermediates.
// The trace only ever holds clones (and, at the end, a fresh copy of the
// logits), so recycling the chain buffers is invisible to callers. A
// non-nil stop predicate is checked after every top-level layer; on stop
// tr.Out stays nil, exactly like the early return it replaces.
func (n *Network) forwardTrace(x []float64, tr *Trace, stop func() bool) {
	cur, pooled := x, false
	for _, l := range n.Layers {
		if next, np, ok := forwardVecLayer(l, cur, tr); ok {
			if pooled {
				tensor.PutVec(cur)
			}
			cur, pooled = next, np
		} else if next := l.Forward(cur, tr); !sameVec(next, cur) {
			if pooled {
				tensor.PutVec(cur)
			}
			cur, pooled = next, false
		}
		if stop != nil && stop() {
			if pooled {
				tensor.PutVec(cur)
			}
			return
		}
	}
	tr.Out = append([]float64(nil), cur...)
	if pooled {
		tensor.PutVec(cur)
	}
}

// ForwardTrace computes the logits while recording flip-site pre/post
// values, ReLU inputs, and ReLU activation patterns.
func (n *Network) ForwardTrace(x []float64) *Trace {
	tr := n.newTrace()
	n.forwardTrace(x, tr, nil)
	return tr
}

// ForwardTraceTo records like ForwardTrace but stops (at top-level layer
// granularity) once flip site `site` has been recorded, saving the cost of
// the downstream layers. Used by the attack's critical-point search, which
// probes one pre-activation many times.
func (n *Network) ForwardTraceTo(x []float64, site int) *Trace {
	tr := n.newTrace()
	n.forwardTrace(x, tr, func() bool {
		return site >= 0 && site < len(tr.Pre) && tr.Pre[site] != nil
	})
	return tr
}

// ForwardTraceToReLU is ForwardTraceTo for a ReLU site.
func (n *Network) ForwardTraceToReLU(x []float64, reluSite int) *Trace {
	tr := n.newTrace()
	n.forwardTrace(x, tr, func() bool {
		return reluSite >= 0 && reluSite < len(tr.ReluIn) && tr.ReluIn[reluSite] != nil
	})
	return tr
}

// ForwardBatch computes logits for a batch (rows = examples). Consumed
// intermediates are recycled through the workspace pool — no layer retains
// its ForwardBatch result (unlike TrainForward, whose activations must
// survive for Backward). The returned logits are the caller's to release
// or abandon.
func (n *Network) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	return forwardBatchChain(n.Layers, x)
}

// TrainForward runs the caching forward pass for training.
func (n *Network) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range n.Layers {
		x = l.TrainForward(x)
	}
	return x
}

// TrainBackward propagates the output gradient, accumulating parameter
// gradients, and returns the input gradient. Consumed chain intermediates
// are recycled through the workspace pool; the returned gradient is the
// caller's to release (or abandon to the GC).
func (n *Network) TrainBackward(dy *tensor.Matrix) *tensor.Matrix {
	return backwardChain(n.Layers, dy)
}

// Params returns every parameter in the network.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			p.ZeroGrad()
		}
	}
}

// PreActJacobian returns the unsigned pre-activation u at flip site and its
// Jacobian Â (d_site × P) with respect to the network input, evaluated at x.
// For a piecewise-linear network this Jacobian is exactly the paper's
// product weight matrix of Formulas 2–3 in the linear region of x.
// Propagation stops as soon as the requested site has been recorded.
func (n *Network) PreActJacobian(x []float64, site int) ([]float64, *tensor.Matrix) {
	if site < 0 || site >= len(n.flips) {
		panic(fmt.Sprintf("nn: flip site %d out of range", site))
	}
	jtr := n.newJVPTrace()
	j := tensor.Identity(len(x))
	v := x
	for _, l := range n.Layers {
		v, j = l.JVP(v, j, jtr)
		if jtr.Have(site) {
			break
		}
	}
	if !jtr.Have(site) {
		panic(fmt.Sprintf("nn: flip site %d never reached", site))
	}
	// Recover the unsigned pre-activation via a trace (cheap single pass).
	tr := n.ForwardTraceTo(x, site)
	return tr.Pre[site], jtr.PreJ[site]
}

func (n *Network) newJVPTrace() *JVPTrace {
	return &JVPTrace{
		PreJ:  make([]*tensor.Matrix, len(n.flips)),
		ReluJ: make([]*tensor.Matrix, len(n.relus)),
	}
}

// ReluInJacobian returns the input of ReLU site r and its Jacobian with
// respect to the network input, evaluated at x. The zero set of this input
// is where the network function actually bends, which is what the attack's
// validation probes.
func (n *Network) ReluInJacobian(x []float64, r int) ([]float64, *tensor.Matrix) {
	if r < 0 || r >= len(n.relus) {
		panic(fmt.Sprintf("nn: relu site %d out of range", r))
	}
	jtr := n.newJVPTrace()
	j := tensor.Identity(len(x))
	v := x
	for _, l := range n.Layers {
		v, j = l.JVP(v, j, jtr)
		if jtr.HaveReLU(r) {
			break
		}
	}
	if !jtr.HaveReLU(r) {
		panic(fmt.Sprintf("nn: relu site %d never reached", r))
	}
	tr := n.ForwardTraceToReLU(x, r)
	return tr.ReluIn[r], jtr.ReluJ[r]
}

// OutputJacobian returns the logits y and the full Jacobian dy/dx (Q × P).
func (n *Network) OutputJacobian(x []float64) ([]float64, *tensor.Matrix) {
	j := tensor.Identity(len(x))
	v := x
	for _, l := range n.Layers {
		v, j = l.JVP(v, j, nil)
	}
	return v, j
}

// SiteEvent describes one flip or ReLU site in computation-walk order,
// annotated with the layer sequence it belongs to so callers can reason
// about direct gating (a ReLU immediately following a Flip in the same
// sequence rectifies exactly that flip's output).
type SiteEvent struct {
	IsFlip bool
	ID     int // flip-site or ReLU-site ID
	Seq    int // sequence instance: 0 = top level, residual paths get fresh IDs
	Pos    int // layer position within the sequence
}

// SiteLayout returns the flip and ReLU sites in computation-walk order.
func (n *Network) SiteLayout() []SiteEvent {
	var out []SiteEvent
	nextSeq := 0
	var walk func(seq int, layers []Layer)
	walk = func(seq int, layers []Layer) {
		for pos, l := range layers {
			switch v := l.(type) {
			case *Flip:
				out = append(out, SiteEvent{IsFlip: true, ID: v.SiteID, Seq: seq, Pos: pos})
			case *ReLU:
				out = append(out, SiteEvent{IsFlip: false, ID: v.SiteID, Seq: seq, Pos: pos})
			case *Residual:
				nextSeq++
				walk(nextSeq, v.Body)
				nextSeq++
				walk(nextSeq, v.Shortcut)
			}
		}
	}
	walk(0, n.Layers)
	return out
}

// CloneForKeys returns a network that shares every parameter with n except
// the Flip layers, which are deep-copied so their signs can be set
// independently. The clone is meant for read-only (inference/Jacobian) use
// under alternative key hypotheses; do not train it.
func (n *Network) CloneForKeys() *Network {
	var cloneLayers func(ls []Layer) []Layer
	cloneLayers = func(ls []Layer) []Layer {
		out := make([]Layer, len(ls))
		for i, l := range ls {
			switch v := l.(type) {
			case *Flip:
				c := NewFlip(v.N)
				copy(c.Signs, v.Signs)
				if v.Offsets != nil {
					c.Offsets = make([]float64, len(v.Offsets))
					copy(c.Offsets, v.Offsets)
				}
				out[i] = c
			case *Residual:
				out[i] = &Residual{
					Body:     cloneLayers(v.Body),
					Shortcut: cloneLayers(v.Shortcut),
				}
			default:
				out[i] = l
			}
		}
		return out
	}
	return NewNetwork(cloneLayers(n.Layers)...)
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W.Data)
	}
	return total
}
