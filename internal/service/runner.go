package service

import (
	"errors"
	"fmt"
	"time"

	"dnnlock/internal/core"
	"dnnlock/internal/farm"
	"dnnlock/internal/harness"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/obs"
	"dnnlock/internal/oracle"
)

// cellKey identifies a trained cell for cross-job reuse: two jobs over the
// same (model, bits, scale, seed) attack the same locked instance, so the
// daemon trains it once and shares it.
type cellKey struct {
	model string
	bits  int
	scale string
	seed  int64
}

// cellEntry memoizes one PrepareCell call. done is closed when training
// finishes; waiters read cell/err afterward.
type cellEntry struct {
	done chan struct{}
	cell *harness.Cell
	err  error
}

// cellCache shares trained cells across jobs and attempts. Guarded by the
// server mutex; training itself runs outside any lock.
func (s *Server) cellFor(j *Job) (*harness.Cell, error) {
	sc, err := j.spec.scale()
	if err != nil {
		return nil, err
	}
	key := cellKey{model: j.spec.Model, bits: j.spec.KeyBits, scale: j.spec.Scale, seed: sc.Seed}

	s.mu.Lock()
	if s.cells == nil {
		s.cells = make(map[cellKey]*cellEntry)
	}
	e := s.cells[key]
	if e == nil {
		e = &cellEntry{done: make(chan struct{})}
		s.cells[key] = e
		s.mu.Unlock()
		e.cell, e.err = harness.PrepareCell(j.spec.Model, j.spec.KeyBits, sc, nil)
		close(e.done)
	} else {
		s.mu.Unlock()
		<-e.done
	}
	return e.cell, e.err
}

// buildOracle provisions the job's oracle channel and finishes its attack
// config. The farm transport is also returned so results can report
// simulated channel time.
func buildOracle(cell *harness.Cell, spec OracleSpec, cfg core.Config) (oracle.Interface, *farm.Transport, core.Config, error) {
	switch spec.Channel {
	case "direct":
		return cell.NewOracle(), nil, cfg, nil
	case "faulty":
		orc, cfg := cell.FaultyOracle(harness.FaultySpec{
			Sigma:     spec.Sigma,
			QuantBits: spec.QuantBits,
			Budget:    spec.Budget,
			LossRate:  spec.Loss,
		}, cfg)
		return orc, nil, cfg, nil
	case "farm":
		ch := farm.Channel{
			RTT:       time.Duration(spec.RTTMS * float64(time.Millisecond)),
			Bandwidth: spec.BandwidthMbps * 1e6 / 8,
			Loss:      spec.Loss,
		}
		tr, cfg, err := cell.FarmOracle(spec.Mix, spec.Devices, ch, cfg)
		if err != nil {
			return nil, nil, cfg, err
		}
		return tr, tr, cfg, nil
	default:
		return nil, nil, cfg, fmt.Errorf("unknown oracle channel %q", spec.Channel)
	}
}

// executeJob is the real runner behind the worker pool: it takes a job from
// queued to a terminal (or suspended) state. It runs on a pool worker
// goroutine; all shared state it touches is lock- or atomic-guarded.
func (s *Server) executeJob(shard int, j *Job) {
	// Preflight: honor requests that arrived while the job sat queued.
	if s.isDraining() {
		// Drain requeues queued jobs for the next start rather than burning
		// shutdown time on fresh attacks.
		s.persist(j)
		return
	}
	switch j.stop.Load() {
	case stopCancel:
		j.setState(StateCancelled)
		s.persist(j)
		return
	case stopSuspend:
		// Suspended before it ever ran: no checkpoint, a resume restarts it.
		j.setState(StateSuspended)
		j.stop.Store(stopNone)
		s.persist(j)
		return
	}

	j.setState(StateRunning)
	s.persist(j)

	attempt := j.view().Attempt
	root := j.tracer.Start("job",
		obs.String("id", j.id),
		obs.String("kind", string(j.spec.Kind)),
		obs.String("model", j.spec.Model),
		obs.Int("bits", j.spec.KeyBits),
		obs.Int("attempt", attempt),
		obs.Int("shard", shard),
	)

	err := s.runAttempt(j, root)

	switch {
	case err == nil:
		root.End(obs.String("outcome", string(j.currentState())))
		s.completed.Add(1)
	case errors.Is(err, core.ErrSuspended):
		if j.stop.Load() == stopCancel {
			j.setState(StateCancelled)
			root.End(obs.String("outcome", "cancelled"))
		} else {
			j.setState(StateSuspended)
			j.stop.CompareAndSwap(stopSuspend, stopNone)
			root.End(obs.String("outcome", "suspended"),
				obs.Int("sites_done", j.view().Progress.SitesDone))
		}
	default:
		j.fail(err)
		root.End(obs.String("outcome", "failed"), obs.String("error", err.Error()))
		s.failed.Add(1)
		s.log.Error("job failed", "id", j.id, "err", err)
	}
	s.persist(j)
}

// runAttempt executes one run segment of the job: a fresh start, or a
// resume from the latest checkpoint. Returns core.ErrSuspended when the
// attack stopped at a boundary on request.
func (s *Server) runAttempt(j *Job, root *obs.Span) error {
	cell, err := s.cellFor(j)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.cell = cell
	j.mu.Unlock()

	switch j.spec.Kind {
	case KindDecrypt:
		return s.runDecrypt(j, cell, root)
	case KindMonolithic:
		return s.runMonolithic(j, cell, root)
	default:
		return fmt.Errorf("unknown kind %q", j.spec.Kind)
	}
}

// runDecrypt runs (or resumes) the checkpointable decryption attack.
func (s *Server) runDecrypt(j *Job, cell *harness.Cell, root *obs.Span) error {
	cfg := cell.DecryptConfig()
	cfg.TraceParent = root

	// Reuse the live oracle across in-process suspend/resume cycles so
	// stateful fault decorators keep their occurrence counters (the
	// Checkpoint resumability invariant); build a fresh one otherwise.
	j.mu.Lock()
	orc := j.orc
	ckptRaw := j.ckpt
	j.mu.Unlock()
	var tr *farm.Transport
	if orc == nil {
		var err error
		orc, tr, cfg, err = buildOracle(cell, j.spec.Oracle, cfg)
		if err != nil {
			return err
		}
		j.mu.Lock()
		j.orc = orc
		j.mu.Unlock()
	} else if t, ok := orc.(*farm.Transport); ok {
		tr = t
	}
	_ = tr // SimTime flows through Result.SimTime; tr kept for symmetry/debug

	spec := cell.Spec()
	sitesTotal := len(spec.SiteBits())
	cfg.OnCheckpoint = func(ck *core.Checkpoint) bool {
		raw, err := ck.Marshal()
		if err != nil {
			s.log.Error("checkpoint marshal failed", "id", j.id, "err", err)
			return true // keep running; worst case the job loses resumability
		}
		j.storeCheckpoint(raw, Progress{
			SitesDone:  ck.SitesDone,
			SitesTotal: sitesTotal,
			Queries:    ck.Queries,
			Rounds:     ck.Rounds,
			Degraded:   ck.Degraded,
		})
		s.persist(j)
		if s.ckptHook != nil {
			s.ckptHook(j)
		}
		return j.stop.Load() == stopNone && !s.isDraining()
	}

	var res *core.Result
	var err error
	if len(ckptRaw) > 0 {
		var ck *core.Checkpoint
		ck, err = core.UnmarshalCheckpoint(ckptRaw)
		if err != nil {
			return fmt.Errorf("decoding stored checkpoint: %w", err)
		}
		res, err = core.Resume(cell.WhiteBox(), cell.Spec(), orc, cfg, ck)
	} else {
		res, err = core.Run(cell.WhiteBox(), cell.Spec(), orc, cfg)
	}
	if err != nil {
		return err
	}

	result := &JobResult{
		Fidelity:    cell.Fidelity(res.Key),
		Accuracy:    cell.AccuracyUnderKey(res.Key),
		Queries:     res.Queries,
		Rounds:      res.Rounds,
		WallSeconds: res.Time.Seconds(),
		SimSeconds:  res.SimTime.Seconds(),
		Equivalent:  res.Equivalent,
		Degraded:    res.Degraded,
	}
	j.mu.Lock()
	j.result = result
	j.progress.SitesDone = sitesTotal
	j.progress.SitesTotal = sitesTotal
	j.progress.Queries = res.Queries
	j.progress.Rounds = res.Rounds
	j.progress.Degraded = int64(res.Degraded)
	j.orc = nil // the attack is over; free the channel stack
	j.mu.Unlock()
	j.setState(StateCompleted)
	return nil
}

// runMonolithic runs the §4.3 baseline. It has no checkpoints; drain and
// cancel requests early-stop the fit through the epoch monitor, which makes
// drain a graceful degradation (the anytime result is still reported) and
// cancel a discard.
func (s *Server) runMonolithic(j *Job, cell *harness.Cell, root *obs.Span) error {
	cfg := cell.MonolithicConfig()
	cfg.TraceParent = root
	orc, _, cfg, err := buildOracle(cell, j.spec.Oracle, cfg)
	if err != nil {
		return err
	}

	stopped := false
	rep, err := core.Monolithic(cell.WhiteBox(), cell.Spec(), orc, cfg,
		func(epoch int, _ hpnn.Key) bool {
			if j.stop.Load() != stopNone || s.isDraining() {
				stopped = true
				return false
			}
			return true
		})
	if err != nil {
		return err
	}
	if stopped && j.stop.Load() == stopCancel {
		j.setState(StateCancelled)
		return nil
	}

	result := &JobResult{
		Fidelity:     cell.Fidelity(rep.Key),
		Accuracy:     cell.AccuracyUnderKey(rep.Key),
		Queries:      rep.Queries,
		Rounds:       rep.Rounds,
		WallSeconds:  rep.Time.Seconds(),
		SimSeconds:   rep.SimTime.Seconds(),
		Equivalent:   rep.Equivalent,
		Degraded:     rep.Degraded,
		StoppedEarly: stopped,
	}
	j.mu.Lock()
	j.result = result
	j.progress.Queries = rep.Queries
	j.progress.Rounds = rep.Rounds
	j.mu.Unlock()
	j.setState(StateCompleted)
	return nil
}
