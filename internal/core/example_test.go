package core_test

import (
	"fmt"
	"math/rand"

	"dnnlock/internal/core"
	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/oracle"
)

// ExampleRun demonstrates the full adversary flow against an HPNN-locked
// model: white box + query access in, exact key out.
func ExampleRun() {
	rng := rand.New(rand.NewSource(3))
	net := models.TinyMLP(rng)
	locked, secret := hpnn.Lock(net, hpnn.Config{
		Scheme: hpnn.Negation, KeyBits: 6, Rng: rng,
	})
	device := oracle.New(locked, secret)

	cfg := core.DefaultConfig()
	cfg.Seed = 4
	result, err := core.Run(locked.WhiteBox(), locked.Spec, device, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fidelity: %.0f%%\n", 100*result.Key.Fidelity(secret))
	fmt.Println("functionally equivalent:", result.Equivalent)
	// Output:
	// fidelity: 100%
	// functionally equivalent: true
}
