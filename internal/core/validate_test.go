package core

import (
	"math/rand"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/models"
	"dnnlock/internal/oracle"
)

// attackWithTrueKey builds an attack whose white box carries the true key
// for all bits at sites < uptoSite and marks them decided (the state
// Algorithm 2 reaches after finishing those layers).
func attackWithTrueKey(t *testing.T, seed int64, keyBits int) (*Attack, hpnn.Key, map[int][]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := models.TinyMLP(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: keyBits, Rng: rng})
	orc := oracle.New(lm, key)
	a := New(lm.WhiteBox(), lm.Spec, orc, DefaultConfig())
	return a, key, lm.Spec.SiteBits()
}

// validateOrFail runs keyVectorValidation, failing the test on oracle error
// (the clean oracle never errors).
func validateOrFail(t *testing.T, a *Attack, sites []int, rng *rand.Rand) bool {
	t.Helper()
	ok, err := a.keyVectorValidation(a.white, sites, rng)
	if err != nil {
		t.Fatalf("keyVectorValidation: %v", err)
	}
	return ok
}

// correctOrFail runs errorCorrection, failing the test on oracle error.
func correctOrFail(t *testing.T, a *Attack, sites, bits []int, rng *rand.Rand) bool {
	t.Helper()
	ok, err := a.errorCorrection(sites, bits, rng)
	if err != nil {
		t.Fatalf("errorCorrection: %v", err)
	}
	return ok
}

func TestValidationAcceptsCorrectKey(t *testing.T) {
	a, key, bySite := attackWithTrueKey(t, 301, 8)
	for _, si := range bySite[0] {
		a.setBit(si, key[si], 1, OriginAlgebraic)
	}
	rng := rand.New(rand.NewSource(302))
	if !validateOrFail(t, a, []int{0}, rng) {
		t.Fatal("validation rejected the correct layer-1 key")
	}
}

func TestValidationRejectsCorruptedKey(t *testing.T) {
	a, key, bySite := attackWithTrueKey(t, 303, 8)
	for i, si := range bySite[0] {
		bit := key[si]
		if i == 0 {
			bit = !bit // inject a single-bit error
		}
		a.setBit(si, bit, 1, OriginAlgebraic)
	}
	rng := rand.New(rand.NewSource(304))
	if validateOrFail(t, a, []int{0}, rng) {
		t.Fatal("validation accepted a corrupted layer-1 key")
	}
}

func TestErrorCorrectionRepairsOneBit(t *testing.T) {
	a, key, bySite := attackWithTrueKey(t, 305, 8)
	bits := bySite[0]
	for i, si := range bits {
		bit := key[si]
		conf := 1.0
		if i == 1 {
			bit = !bit
			conf = 0.05 // corrupted bit marked least confident
		}
		a.setBit(si, bit, conf, OriginLearning)
	}
	rng := rand.New(rand.NewSource(306))
	if validateOrFail(t, a, []int{0}, rng) {
		t.Fatal("precondition: corrupted key should fail validation")
	}
	if !correctOrFail(t, a, []int{0}, bits, rng) {
		t.Fatal("error correction failed to repair a 1-bit error")
	}
	for _, si := range bits {
		if a.CurrentKey()[si] != key[si] {
			t.Fatal("error correction settled on a wrong key")
		}
	}
}

func TestErrorCorrectionRepairsTwoBits(t *testing.T) {
	a, key, bySite := attackWithTrueKey(t, 307, 8)
	bits := bySite[0]
	for i, si := range bits {
		bit := key[si]
		conf := 1.0
		if i == 0 || i == 2 {
			bit = !bit
			conf = 0.1
		}
		a.setBit(si, bit, conf, OriginLearning)
	}
	rng := rand.New(rand.NewSource(308))
	if !correctOrFail(t, a, []int{0}, bits, rng) {
		t.Fatal("error correction failed to repair a 2-bit error")
	}
	for _, si := range bits {
		if a.CurrentKey()[si] != key[si] {
			t.Fatal("2-bit correction settled on a wrong key")
		}
	}
}

func TestValidationLastLayerDirectCompare(t *testing.T) {
	a, key, _ := attackWithTrueKey(t, 309, 6)
	// Decide every bit correctly: validation should use direct comparison
	// and pass.
	for si := range key {
		a.setBit(si, key[si], 1, OriginAlgebraic)
	}
	rng := rand.New(rand.NewSource(310))
	if _, mode := a.validationProbe([]int{1}); mode != modeDirect {
		t.Fatalf("expected direct-compare mode, got %d", mode)
	}
	if !validateOrFail(t, a, []int{1}, rng) {
		t.Fatal("direct comparison rejected the full correct key")
	}
	// Corrupt one final-layer bit: direct comparison must fail.
	a.setBit(0, !key[0], 1, OriginAlgebraic)
	if validateOrFail(t, a, []int{1}, rng) {
		t.Fatal("direct comparison accepted a wrong key")
	}
}

func TestValidationProbeDefersInsideResidualBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	net := models.TinyResNet(rng)
	lm, key := hpnn.Lock(net, hpnn.Config{Scheme: hpnn.Negation, KeyBits: 6, Rng: rng})
	orc := oracle.New(lm, key)
	a := New(lm.WhiteBox(), lm.Spec, orc, DefaultConfig())
	bySite := lm.Spec.SiteBits()
	// Decide site 0 and site 1 (first conv in the block); sites 2 bits
	// remain undecided.
	for _, si := range append(bySite[0], bySite[1]...) {
		a.setBit(si, key[si], 1, OriginAlgebraic)
	}
	if _, mode := a.validationProbe([]int{1}); mode != modeDefer {
		t.Fatalf("expected deferral inside the residual block, got mode %d", mode)
	}
	// Stem alone is probeable.
	if _, mode := a.validationProbe([]int{0}); mode != modeKink {
		t.Fatalf("expected kink probe for the stem, got mode %d", mode)
	}
}

func TestDirectCompareTolerance(t *testing.T) {
	a, key, _ := attackWithTrueKey(t, 312, 4)
	for si := range key {
		a.setBit(si, key[si], 1, OriginAlgebraic)
	}
	rng := rand.New(rand.NewSource(313))
	ok, err := a.directCompare(nil, a.white, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("direct compare rejected the exact network")
	}
	a.setBit(0, !key[0], 1, OriginAlgebraic)
	ok, err = a.directCompare(nil, a.white, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("direct compare accepted a wrong key")
	}
}
