package hpnn_test

import (
	"fmt"
	"math/rand"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/nn"
)

// ExampleLock shows the vendor-side flow: build a model, lock a subset of
// neurons, and read back the key entangled into the network.
func ExampleLock() {
	rng := rand.New(rand.NewSource(7))
	net := nn.NewNetwork(
		nn.NewDense(4, 6).InitHe(rng), nn.NewFlip(6), nn.NewReLU(6),
		nn.NewDense(6, 2).InitHe(rng),
	)
	locked, key := hpnn.Lock(net, hpnn.Config{
		Scheme:  hpnn.Negation,
		KeyBits: 4,
		Rng:     rng,
	})
	fmt.Println("bits:", locked.Spec.NumBits())
	fmt.Println("scheme:", locked.Spec.Scheme)
	fmt.Println("key matches network state:", locked.ExtractKey(net).Fidelity(key) == 1)
	// Output:
	// bits: 4
	// scheme: negation
	// key matches network state: true
}

// ExampleKey_Fidelity computes the paper's fidelity metric between an
// extracted key and the ground truth.
func ExampleKey_Fidelity() {
	truth := hpnn.Key{true, false, true, true}
	extracted := hpnn.Key{true, false, false, true}
	fmt.Printf("%.2f\n", extracted.Fidelity(truth))
	fmt.Println(extracted.HammingDistance(truth))
	// Output:
	// 0.75
	// 1
}
