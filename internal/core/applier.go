package core

import (
	"fmt"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/nn"
)

// bitApplier abstracts how a key bit manifests in a network so the shared
// machinery (validation, error correction, key assembly) works for the
// standard negation scheme and every §3.9 variant.
type bitApplier interface {
	// apply writes the bit of the protected neuron into net.
	apply(net *nn.Network, pn hpnn.ProtectedNeuron, specIdx int, bit bool)
	// read extracts the bit of the protected neuron from net.
	read(net *nn.Network, pn hpnn.ProtectedNeuron, specIdx int) bool
	// clone copies net cheaply enough that applied bits stay independent.
	clone(net *nn.Network) *nn.Network
}

// negationApplier implements standard HPNN: (-1)^K on the pre-activation.
type negationApplier struct{}

func (negationApplier) apply(net *nn.Network, pn hpnn.ProtectedNeuron, _ int, bit bool) {
	net.Flips()[pn.Site].SetBit(pn.Index, bit)
}

func (negationApplier) read(net *nn.Network, pn hpnn.ProtectedNeuron, _ int) bool {
	return net.Flips()[pn.Site].Bit(pn.Index)
}

func (negationApplier) clone(net *nn.Network) *nn.Network { return net.CloneForKeys() }

// scalingApplier implements variant (a): α^K on the pre-activation.
type scalingApplier struct{ alpha float64 }

func (s scalingApplier) apply(net *nn.Network, pn hpnn.ProtectedNeuron, _ int, bit bool) {
	if bit {
		net.Flips()[pn.Site].Signs[pn.Index] = s.alpha
	} else {
		net.Flips()[pn.Site].Signs[pn.Index] = 1
	}
}

func (s scalingApplier) read(net *nn.Network, pn hpnn.ProtectedNeuron, _ int) bool {
	//lint:ignore floatcmp Signs hold the exact sentinel values the locker wrote (1 or alpha)
	return net.Flips()[pn.Site].Signs[pn.Index] != 1
}

func (scalingApplier) clone(net *nn.Network) *nn.Network { return net.CloneForKeys() }

// biasShiftApplier implements variant (b) on biases: +δ·K after the
// pre-activation.
type biasShiftApplier struct{ delta float64 }

func (b biasShiftApplier) apply(net *nn.Network, pn hpnn.ProtectedNeuron, _ int, bit bool) {
	if bit {
		net.Flips()[pn.Site].SetOffset(pn.Index, b.delta)
	} else {
		net.Flips()[pn.Site].SetOffset(pn.Index, 0)
	}
}

func (b biasShiftApplier) read(net *nn.Network, pn hpnn.ProtectedNeuron, _ int) bool {
	f := net.Flips()[pn.Site]
	//lint:ignore floatcmp Offsets hold the exact sentinel the locker wrote (0 or alpha)
	return f.Offsets != nil && f.Offsets[pn.Index] != 0
}

func (biasShiftApplier) clone(net *nn.Network) *nn.Network { return net.CloneForKeys() }

// weightPerturbApplier implements variant (b) on weights: one element of
// the producer Dense row moves by δ when K = 1. base holds the unperturbed
// element values read from the released white box.
type weightPerturbApplier struct {
	delta float64
	base  []float64
}

func newWeightPerturbApplier(white *nn.Network, spec hpnn.LockSpec, delta float64) *weightPerturbApplier {
	a := &weightPerturbApplier{delta: delta, base: make([]float64, spec.NumBits())}
	for i, pn := range spec.Neurons {
		d, ok := hpnn.ProducerDense(white, pn.Site)
		if !ok {
			panic("core: weight-perturb locking requires Dense producers")
		}
		a.base[i] = d.W.W.At(pn.Index, pn.Col)
	}
	return a
}

func (w *weightPerturbApplier) apply(net *nn.Network, pn hpnn.ProtectedNeuron, specIdx int, bit bool) {
	d, ok := hpnn.ProducerDense(net, pn.Site)
	if !ok {
		panic("core: weight-perturb locking requires Dense producers")
	}
	v := w.base[specIdx]
	if bit {
		v += w.delta
	}
	d.W.W.Set(pn.Index, pn.Col, v)
}

func (w *weightPerturbApplier) read(net *nn.Network, pn hpnn.ProtectedNeuron, specIdx int) bool {
	d, _ := hpnn.ProducerDense(net, pn.Site)
	//lint:ignore floatcmp reads back the exact stored weight: applied bits differ from base bit for bit
	return d.W.W.At(pn.Index, pn.Col) != w.base[specIdx]
}

// clone must deep-copy Dense layers, since applied bits live in weights.
func (w *weightPerturbApplier) clone(net *nn.Network) *nn.Network { return net.Clone() }

// applierFor builds the applier matching a lock spec. The white box is
// needed to capture weight-perturb base values.
func applierFor(white *nn.Network, spec hpnn.LockSpec) bitApplier {
	switch spec.Scheme {
	case hpnn.Negation:
		return negationApplier{}
	case hpnn.Scaling:
		return scalingApplier{alpha: spec.Alpha}
	case hpnn.BiasShift:
		return biasShiftApplier{delta: spec.Alpha}
	case hpnn.WeightPerturb:
		return newWeightPerturbApplier(white, spec, spec.Alpha)
	default:
		panic(fmt.Sprintf("core: unsupported scheme %v", spec.Scheme))
	}
}
