// Package oracle implements the attacker-facing query interface of the
// adversary model (§2.3): the adversary owns a working device and can query
// it with arbitrary inputs a reasonable number of times, observing the
// logits. The oracle counts queries so experiments can report the paper's
// query-complexity metric.
//
// The paper assumes a perfectly reliable device returning exact
// full-precision logits. Interface is the boundary that lets experiments
// relax that assumption: Oracle is the clean reference implementation, and
// the decorators in fault.go (Quantized, Noisy, LabelOnly, Budgeted,
// Flaky) degrade it in seeded, composable ways so the attack's fidelity
// and query complexity can be evaluated under realistic device access.
//
// Beyond per-query counts, implementations track round-trips: Rounds()
// reports how many Query/QueryBatch calls the attacker paid, the quantity
// that dominates wall clock against a networked device. Oracles whose
// channel is time-simulated additionally implement Clocked, exposing the
// simulated channel clock (farm.Transport is the canonical one); the
// attack surfaces it as Result.SimTime and the sim_ns trace fields.
package oracle

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/rot"
	"dnnlock/internal/tensor"
)

// Interface is the oracle boundary consumed by the attacks, the harness,
// and the benches. Implementations must be safe for concurrent use.
//
// Query and QueryBatch return the device's response or an error describing
// why no response was produced; callers must not interpret a nil error as
// an exact answer (decorators may quantize, perturb, or truncate the
// response while still succeeding). Returned slices and matrices are owned
// by the caller; QueryBatch results come from the workspace pool and are
// recycled with tensor.PutMatrix.
type Interface interface {
	// Query runs one inference and returns the output vector.
	Query(x []float64) ([]float64, error)
	// QueryBatch runs one inference per row of x and returns the pooled
	// output matrix, one row per input row.
	QueryBatch(x *tensor.Matrix) (*tensor.Matrix, error)
	// Queries returns the number of device queries consumed so far.
	Queries() int64
	// Rounds returns the number of oracle round-trips consumed so far:
	// each Query and each QueryBatch call is one round, regardless of how
	// many rows it carries. Rounds is the metric that dominates a remote
	// attack (latency per round-trip), where Queries models the device's
	// per-inference cost.
	//
	// Failed round-trips count: a round is consumed when the request is
	// sent, whether or not a usable response comes back — a Flaky drop or
	// a device-error return burns at least as much wall-clock as a
	// success. The exception is a refusal that never reaches the channel
	// (Budgeted's ErrBudgetExhausted is decided client-side), which
	// consumes nothing.
	Rounds() int64
	// ResetCounter zeroes the query and round counters (used between
	// experiment phases). It does not refill any query budget. Decorators
	// that keep their own round contributions (Flaky's dropped calls, a
	// farm Transport's dispatched rounds) must zero those too, so a reset
	// zeroes Rounds at every layer of a stack.
	ResetCounter()
	// Softmax reports whether responses are probabilities rather than
	// logits.
	Softmax() bool
}

// Clocked is the optional interface of oracles whose channel runs on a
// simulated clock (a farm.Transport). SimElapsed reports the virtual time
// consumed so far; callers that price round-trips (core's phase tracking,
// the harness) take deltas of it exactly as they take deltas of Rounds.
// Implementations must be safe for concurrent use. Decorators that wrap a
// Clocked oracle need not forward it — the transport sits outermost in
// practice.
type Clocked interface {
	SimElapsed() time.Duration
}

// Errors surfaced at the oracle boundary. Callers distinguish transient
// failures (worth retrying) from budget exhaustion (terminal).
var (
	// ErrBudgetExhausted is returned by a Budgeted oracle once the query
	// cap is spent. It is terminal: retrying cannot succeed.
	ErrBudgetExhausted = errors.New("oracle: query budget exhausted")
	// ErrTransient is returned for transient device failures (a Flaky
	// oracle's dropped queries). Retrying the same query may succeed.
	ErrTransient = errors.New("oracle: transient device failure")
)

// BatchError reports a QueryBatch failure with the index of the first row
// that failed. Rows before Row were evaluated successfully (their results
// are discarded along with the pooled output buffer); rows at and after Row
// may not have been attempted. Coalesced batches use Row to attribute a
// mid-batch fault to the request that hit it.
type BatchError struct {
	Row int
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("oracle: batch row %d: %v", e.Row, e.Err)
}

// Unwrap exposes the underlying cause so errors.Is sees ErrTransient and
// ErrBudgetExhausted through the batch wrapper.
func (e *BatchError) Unwrap() error { return e.Err }

// Oracle wraps a provisioned device and counts queries. Safe for concurrent
// use. The adversary model (§2.3) lets the end-user observe either the
// logits or the softmax output vector; softmax mode models the latter.
type Oracle struct {
	dev     *rot.Device
	softmax bool
	queries atomic.Int64
	rounds  atomic.Int64
}

var _ Interface = (*Oracle)(nil)

// New provisions a fresh device with the correct key, binds the locked
// model, and returns the resulting oracle — the experimental stand-in for
// "a malicious end-user who bought a licensed accelerator".
func New(model *hpnn.LockedModel, correctKey hpnn.Key) *Oracle {
	dev := rot.Provision("oracle-device", correctKey, []byte("attestation-secret"))
	if err := dev.Bind(model); err != nil {
		panic("oracle: " + err.Error())
	}
	return &Oracle{dev: dev}
}

// NewSoftmax is New for a device that exposes only softmax probabilities.
func NewSoftmax(model *hpnn.LockedModel, correctKey hpnn.Key) *Oracle {
	o := New(model, correctKey)
	o.softmax = true
	return o
}

// FromDevice wraps an already-provisioned, bound device.
func FromDevice(dev *rot.Device) *Oracle { return &Oracle{dev: dev} }

// Softmax reports whether the oracle returns probabilities rather than
// logits.
func (o *Oracle) Softmax() bool { return o.softmax }

// Query runs one inference and returns the logits (or the softmax output
// vector in softmax mode). Device errors are returned, not panicked: the
// attack path must be able to survive a degraded device.
func (o *Oracle) Query(x []float64) ([]float64, error) {
	o.queries.Add(1)
	o.rounds.Add(1)
	return o.evalRow(x)
}

// QueryBatch runs one inference per row and returns the output matrix.
// Rows are evaluated concurrently (the device is safe for concurrent
// inference), sharded over tensor.Parallelism() goroutines. Each row lands
// in its own output slot, so the result is identical to the serial loop.
//
// The result comes from the workspace pool (per-invocation callers like the
// learning attack recycle it with tensor.PutMatrix); on error the pooled
// buffer is released before the error is surfaced, so the caller owns a
// buffer only when err is nil. A 0-row input yields an empty pooled 0×0
// matrix, not nil, so callers may PutMatrix or iterate it unconditionally.
func (o *Oracle) QueryBatch(x *tensor.Matrix) (*tensor.Matrix, error) {
	o.queries.Add(int64(x.Rows))
	o.rounds.Add(1)
	if x.Rows == 0 {
		return tensor.GetMatrix(0, 0), nil
	}
	// First row sizes the output matrix.
	y0, err := o.dev.Evaluate(x.Row(0))
	if err != nil {
		return nil, &BatchError{Row: 0, Err: err}
	}
	if o.softmax {
		y0 = tensor.Softmax(y0)
	}
	out := tensor.GetMatrix(x.Rows, len(y0))
	out.SetRow(0, y0)
	rest := x.Rows - 1
	workers := tensor.Parallelism()
	if workers > rest {
		workers = rest
	}
	if workers <= 1 {
		for i := 1; i < x.Rows; i++ {
			y, err := o.dev.Evaluate(x.Row(i))
			if err != nil {
				tensor.PutMatrix(out)
				return nil, &BatchError{Row: i, Err: err}
			}
			if o.softmax {
				tensor.SoftmaxInto(out.Row(i), y)
			} else {
				out.SetRow(i, y)
			}
		}
		return out, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	errRows := make([]int, workers)
	chunk := (rest + workers - 1) / workers
	for w, lo := 0, 1; lo < x.Rows; w, lo = w+1, lo+chunk {
		hi := lo + chunk
		if hi > x.Rows {
			hi = x.Rows
		}
		wg.Add(1)
		//lint:ignore nakedgo fan-out sized by tensor.Parallelism; each goroutine writes a disjoint row range of out
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				y, err := o.dev.Evaluate(x.Row(i))
				if err != nil {
					errs[w], errRows[w] = err, i
					return
				}
				if o.softmax {
					tensor.SoftmaxInto(out.Row(i), y)
				} else {
					out.SetRow(i, y)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	// Workers cover disjoint ascending row ranges, so the lowest-index
	// failure across workers is the first failing row of the batch —
	// deterministic regardless of goroutine scheduling.
	first := -1
	for w, err := range errs {
		if err != nil && (first == -1 || errRows[w] < errRows[first]) {
			first = w
		}
	}
	if first != -1 {
		// Surface on the caller's goroutine, like the serial path. The
		// pooled buffer goes back first: an error exit owns nothing.
		tensor.PutMatrix(out)
		return nil, &BatchError{Row: errRows[first], Err: errs[first]}
	}
	return out, nil
}

// evalRow runs one uncounted device inference (QueryBatch bulk-counts).
func (o *Oracle) evalRow(x []float64) ([]float64, error) {
	y, err := o.dev.Evaluate(x)
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	if o.softmax {
		return tensor.Softmax(y), nil
	}
	return y, nil
}

// Queries returns the total number of queries so far.
func (o *Oracle) Queries() int64 { return o.queries.Load() }

// Rounds returns the total number of oracle round-trips so far (one per
// Query or QueryBatch call).
func (o *Oracle) Rounds() int64 { return o.rounds.Load() }

// ResetCounter zeroes the query and round counters (used between
// experiment phases).
func (o *Oracle) ResetCounter() {
	o.queries.Store(0)
	o.rounds.Store(0)
}
