package core

import (
	"math"
	"math/rand"

	"dnnlock/internal/nn"
	"dnnlock/internal/tensor"
	"dnnlock/internal/train"
)

// fitSoft32 is the float32 speed tier of fitSoft (Config.TrainPrecision ==
// Float32, DESIGN.md §13). It mirrors the exact loop statement for
// statement — same slicing, same Adam optimizer on the same float64 soft
// coefficient masters, same shuffled minibatch schedule from the same rng
// draws, same stop rules reading the same float64 coefficients — but runs
// the suffix forward/backward and the loss in float32 through nn.Engine32,
// with every workspace carved from one Arena32 that is released wholesale
// when the fit returns.
//
// What differs from the exact tier is only the rounding of the gradient
// values flowing into the masters, so the fitted trajectory (losses,
// epochs-to-stop) may drift while the recovered key bits agree; the
// precision-parity property test in decrypt_prop_test.go enforces the
// agreement on every fuzzed architecture. The rng consumption pattern is
// identical by construction (one Perm plus one Shuffle per epoch), and the
// engine is built before the first draw, so a false return — some suffix
// layer has no float32 shadow — leaves the rng untouched for the exact
// fallback.
func fitSoft32(sl *nn.Slice, sites []softSite, x, y *tensor.Matrix, cfg Config,
	rng *rand.Rand, softmax bool, epochCb func(epoch int, loss float64) bool) bool {

	ar := tensor.GetArena32()
	eng, ok := nn.NewEngine32(sl, ar)
	if !ok {
		tensor.PutArena32(ar)
		return false
	}
	defer tensor.PutArena32(ar)

	softParams := make([]*nn.Param, len(sites))
	for i, s := range sites {
		softParams[i] = s.param
	}
	opt := train.NewAdam(cfg.LearnRate)
	n := x.Rows
	perm := rng.Perm(n)

	// Frozen-prefix activation cache, evaluated exactly once in float64 and
	// demoted once — the prefix is not retrained, so there is no reason to
	// re-run it at reduced width.
	h := sl.PrefixForward(x)
	if h != x {
		defer tensor.PutMatrix(h)
	}
	h32 := ar.Mat(h.Rows, h.Cols)
	tensor.ConvertInto(h32, h)
	y32 := ar.Mat(y.Rows, y.Cols)
	tensor.ConvertInto(y32, y)

	// Full-size minibatch workspaces; partial batches reslice them. The
	// batch loop visits full batches first, so the engine's lazily-sized
	// internal buffers are carved at their maximum on the first batch and
	// the epoch loop allocates nothing.
	batch := cfg.LearnBatch
	if batch > n {
		batch = n
	}
	bhBuf := ar.Mat(batch, h32.Cols)
	byBuf := ar.Mat(batch, y32.Cols)
	gradBuf := ar.Mat(batch, y32.Cols)
	smScratch := ar.Vec(y32.Cols)
	// reslice shrinks (or restores) a workspace's row count in place; the
	// backing arena block keeps its full capacity, so unlike FromSlice no
	// header escapes to the heap per minibatch.
	reslice := func(m *tensor.Mat[float32], rows int) *tensor.Mat[float32] {
		m.Rows = rows
		m.Data = m.Data[:rows*m.Cols]
		return m
	}

	bestLoss := math.Inf(1)
	stall := 0
	for epoch := 0; epoch < cfg.LearnEpochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		epochLoss := 0.0
		batches := 0
		for start := 0; start < n; start += cfg.LearnBatch {
			end := start + cfg.LearnBatch
			if end > n {
				end = n
			}
			m := end - start
			bh := reslice(bhBuf, m)
			by := reslice(byBuf, m)
			tensor.GatherRowsInto(bh, h32, perm[start:end])
			tensor.GatherRowsInto(by, y32, perm[start:end])
			pred := eng.Forward(bh)
			grad := reslice(gradBuf, m)
			var loss float64
			if softmax {
				loss = train.MSESoftmax32(grad, pred, by, smScratch)
			} else {
				loss = train.MSEInto32(grad, pred, by)
			}
			eng.Backward(grad)
			opt.Step(softParams)
			// No ZeroGrad here: the engine never touches the frozen suffix
			// weight gradients the exact tier had to discard, and Step zeroes
			// the soft params it updates.
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		if epochCb != nil && !epochCb(epoch, epochLoss) {
			return true
		}
		// Stop rule i: every coefficient is confident.
		allConfident := true
		for _, s := range sites {
			for _, k := range s.flip.SoftCoeffs() {
				if math.Abs(k) < cfg.ConfidenceThreshold {
					allConfident = false
					break
				}
			}
		}
		if allConfident {
			return true
		}
		// Stop rule ii (attacker-observable): loss plateau.
		if epochLoss < bestLoss-1e-12 {
			bestLoss = epochLoss
			stall = 0
		} else {
			stall++
			if stall >= cfg.PlateauEpochs {
				return true
			}
		}
	}
	return true
}
