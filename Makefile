GO ?= go

.PHONY: build test race bench bench-compare robust farm table1 serve vet lint lint-fix check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## lint: repo-specific analyzers (pool discipline, determinism, float
## equality, goroutine sites, package docs, query seams, error flow, span
## lifecycles, goroutine lifecycles) — see DESIGN.md §10, §15
lint:
	$(GO) run ./cmd/dnnlint ./...

## lint-fix: preview the autofixer's rewrites as a unified diff (dry run);
## FIX=1 applies them in place. See DESIGN.md §15.
lint-fix:
ifeq ($(FIX),1)
	$(GO) run ./cmd/dnnlint -fix ./...
else
	$(GO) run ./cmd/dnnlint -diff ./...
endif

## race: static checks + race-detector pass over the concurrent internals
race:
	sh scripts/check.sh

## bench: Table 1 / Figure 3 + kernel micro-benches, emits BENCH_<date>.json
bench:
	sh scripts/bench.sh

## bench-compare: diff the newest BENCH_*.json against the committed baseline
bench-compare:
	sh scripts/bench_compare.sh

## robust: sweep the decryption attack across noisy/quantized oracles
## (DESIGN.md §11); tiny scale by default, seconds on one core
robust:
	$(GO) run ./cmd/dnnlock robust -model mlp -bits 8 -scale tiny

## farm: price the attack over a simulated device farm — RTT x bandwidth x
## loss x fleet mix, predicted wall-clock per point (DESIGN.md §16); tiny
## scale, 1000 simulated devices by default
farm:
	$(GO) run ./cmd/dnnlock farm -model mlp -bits 8 -scale tiny

## table1: Table 1 sweep with a JSONL span trace, then render + verify it
## (DESIGN.md §12, EXPERIMENTS.md); tiny scale by default
table1:
	$(GO) run ./cmd/dnnlock table1 -model mlp -scale tiny -trace table1_trace.jsonl
	$(GO) run ./cmd/dnnlock trace -in table1_trace.jsonl -check

## serve: run the attack-service daemon (cmd/dnnlockd) on :8080 with job
## persistence under ./dnnlockd-state — submit jobs with the HTTP API, see
## OPERATIONS.md for endpoints and a curl walkthrough
serve:
	$(GO) run ./cmd/dnnlockd -addr :8080 -state dnnlockd-state

clean:
	$(GO) clean -testcache
	rm -f *.prof *.test cpu.out mem.out
