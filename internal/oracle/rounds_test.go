package oracle

// Round-trip accounting under faults (DESIGN.md §16). A round is consumed
// when a request is sent, whether or not a usable response comes back: a
// Flaky drop models a timeout (which costs MORE wall-clock than a success)
// and a device-error return still crossed the channel. These tests pin that
// semantics at every layer of a decorator stack, and pin that drop
// decisions are input-addressed so the schedule survives goroutine
// scheduling and batch coalescing.

import (
	"errors"
	"testing"

	"dnnlock/internal/hpnn"
	"dnnlock/internal/rot"
	"dnnlock/internal/tensor"
)

// TestFlakyRoundsCountDrops is the ISSUE 9 regression test: after N drops
// and M successes, Rounds() must be N+M — every dispatched request cost one
// round-trip — while Queries() remains M (no inference ran on a drop).
func TestFlakyRoundsCountDrops(t *testing.T) {
	inner, _ := newTestOracle(60)
	o := Flaky(inner, 0.5, 61)
	x := []float64{0.3, -0.1, 0.7, 0.2}
	drops, successes := 0, 0
	for i := 0; i < 40; i++ {
		if _, err := o.Query(x); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("drop surfaced as %v, not ErrTransient", err)
			}
			drops++
		} else {
			successes++
		}
	}
	if drops == 0 || successes == 0 {
		t.Fatalf("rate-0.5 schedule produced %d drops / %d successes; test needs both", drops, successes)
	}
	if got, want := o.Rounds(), int64(drops+successes); got != want {
		t.Fatalf("Rounds() = %d after %d drops + %d successes, want %d", got, drops, successes, want)
	}
	if got := o.Queries(); got != int64(successes) {
		t.Fatalf("Queries() = %d, want %d (drops must not count queries)", got, successes)
	}
	if got := inner.Rounds(); got != int64(successes) {
		t.Fatalf("inner.Rounds() = %d, want %d (drops never reached the device)", got, successes)
	}

	// Batch drops cost one round each too.
	xb := tensor.New(3, 4)
	bDrops, bSuccesses := 0, 0
	for i := 0; i < 20; i++ {
		xb.Data[0] = float64(i) // distinct batches, fresh drop decisions
		out, err := o.QueryBatch(xb)
		tensor.PutMatrix(out) // nil on a dropped round; nil-safe
		if err != nil {
			bDrops++
			continue
		}
		bSuccesses++
	}
	if bDrops == 0 || bSuccesses == 0 {
		t.Fatalf("batch schedule produced %d drops / %d successes; test needs both", bDrops, bSuccesses)
	}
	if got, want := o.Rounds(), int64(drops+successes+bDrops+bSuccesses); got != want {
		t.Fatalf("Rounds() = %d after batches, want %d", got, want)
	}
}

// TestDeviceErrorCountsRound pins the other half of the failed-round
// semantics: a request that reaches the device and comes back with an
// error still consumed a round-trip (and a query — the request was
// dispatched to the device).
func TestDeviceErrorCountsRound(t *testing.T) {
	// A provisioned but unbound device fails every Evaluate.
	o := FromDevice(rot.Provision("unbound", hpnn.Key{false, true}, []byte("s")))
	if _, err := o.Query([]float64{1, 2}); err == nil {
		t.Fatal("unbound device should error")
	}
	if got := o.Rounds(); got != 1 {
		t.Fatalf("Rounds() = %d after a device-error Query, want 1", got)
	}
	xb := tensor.New(2, 2)
	out, err := o.QueryBatch(xb)
	tensor.PutMatrix(out) // nil on error; nil-safe
	if err == nil {
		t.Fatal("unbound device should error on QueryBatch")
	}
	if got := o.Rounds(); got != 2 {
		t.Fatalf("Rounds() = %d after a device-error QueryBatch, want 2", got)
	}
}

// TestFlakyInputAddressed pins the determinism contract: the k-th attempt
// of a given input draws the k-th decision for that input, regardless of
// what else is interleaved — the property that keeps the drop schedule
// stable under the planner's cross-goroutine coalescer.
func TestFlakyInputAddressed(t *testing.T) {
	a := []float64{0.1, 0.2, 0.3, 0.4}
	b := []float64{-0.5, 0.6, -0.7, 0.8}
	schedule := func(order [][]float64) map[string][]bool {
		in, _ := newTestOracle(62)
		o := Flaky(in, 0.5, 63)
		got := map[string][]bool{}
		for _, x := range order {
			_, err := o.Query(x)
			key := "a"
			if &x[0] == &b[0] {
				key = "b"
			}
			got[key] = append(got[key], err != nil)
		}
		return got
	}
	s1 := schedule([][]float64{a, a, b, a, b, b, a})
	s2 := schedule([][]float64{b, b, a, b, a, a, a})
	for _, key := range []string{"a", "b"} {
		if len(s1[key]) != len(s2[key]) {
			t.Fatalf("input %s: attempt counts differ", key)
		}
		for i := range s1[key] {
			if s1[key][i] != s2[key][i] {
				t.Fatalf("input %s attempt %d: drop decision depends on interleaving", key, i)
			}
		}
	}
}

// TestStackedResetZeroesRounds audits ResetCounter across a full decorator
// stack: after a reset at the top, both Queries and Rounds must read zero
// from every layer — including Flaky's own dropped-round contribution — so
// per-cell accounting in a sweep can never leak across cells.
func TestStackedResetZeroesRounds(t *testing.T) {
	inner, _ := newTestOracle(64)
	bud := Budgeted(inner, 1_000)
	fl := Flaky(bud, 0.5, 65)
	no := Noisy(fl, 0.01, 66)
	top := Quantized(no, 8)

	x := []float64{0.9, -0.3, 0.5, 0.1}
	drops, successes := 0, 0
	for i := 0; i < 30; i++ {
		if _, err := top.Query(x); err != nil {
			drops++
		} else {
			successes++
		}
	}
	if drops == 0 || successes == 0 {
		t.Fatalf("schedule produced %d drops / %d successes; test needs both", drops, successes)
	}
	if got, want := top.Rounds(), int64(drops+successes); got != want {
		t.Fatalf("stacked Rounds() = %d, want %d", got, want)
	}

	top.ResetCounter()
	layers := map[string]Interface{"quantized": top, "noisy": no, "flaky": fl, "budgeted": bud, "base": inner}
	for name, l := range layers {
		if q := l.Queries(); q != 0 {
			t.Errorf("%s.Queries() = %d after reset, want 0", name, q)
		}
		if r := l.Rounds(); r != 0 {
			t.Errorf("%s.Rounds() = %d after reset, want 0", name, r)
		}
	}

	// The budget, by contrast, must NOT refill on reset. Only the flaky
	// successes reached the budgeted layer, so `successes` of the 1000 are
	// spent; burn the rest directly against it.
	used := int64(successes)
	for i := 0; int64(i) < 1_000-used; i++ {
		if _, err := bud.Query(x); err != nil {
			t.Fatalf("budget exhausted early: %v", err)
		}
	}
	if _, err := bud.Query(x); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("budget refilled by ResetCounter: err = %v", err)
	}
}
