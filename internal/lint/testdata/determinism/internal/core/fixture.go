// Package core hosts determinism golden fixtures: the third kernel package
// in scope.
package core

import "sort"

func sortedMapIteration(m map[string]int) []string {
	var keys []string
	//lint:ignore determinism canonical pattern: keys collected then sorted
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unsortedMapIteration(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map in a kernel package"
		total += v
	}
	return total
}
