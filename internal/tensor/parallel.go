package tensor

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file is the parallel compute runtime behind the package's kernels.
//
// Kernels fan row shards out over a persistent pool of worker goroutines.
// Determinism is a hard guarantee: every fan-out width — including 1, which
// takes the pure serial path — produces bit-for-bit identical results,
// because output rows are partitioned across workers (never split) and each
// kernel fixes the per-element accumulation order (see kernels.go). The
// width defaults to runtime.NumCPU, can be pinned with the DNNLOCK_PROCS
// environment variable, and is adjustable at runtime with SetParallelism.
//
// Pool tasks must be leaf kernels: a task must never submit to the pool and
// wait, or a full pool could deadlock on itself. Code that wants to fan out
// work which itself calls tensor kernels (e.g. oracle.QueryBatch) should
// spawn its own goroutines, sized by Parallelism.

var (
	parWidth   atomic.Int32 // target fan-out width for kernel shards
	parMu      sync.Mutex   // guards pool growth
	parWorkers int          // worker goroutines spawned so far
	parQueue   chan func()  // submission queue feeding the workers
)

func init() {
	parWidth.Store(int32(defaultParallelism(os.Getenv("DNNLOCK_PROCS"))))
}

// defaultParallelism resolves the DNNLOCK_PROCS override, falling back to
// runtime.NumCPU for an unset, malformed, or non-positive value.
func defaultParallelism(env string) int {
	if v, err := strconv.Atoi(env); err == nil && v >= 1 {
		return v
	}
	return runtime.NumCPU()
}

// Parallelism reports the fan-out width currently targeted by the kernels.
func Parallelism() int { return int(parWidth.Load()) }

// SetParallelism sets the kernel fan-out width. n = 1 forces the serial
// path; n <= 0 resets to runtime.NumCPU(). The choice never changes
// results: parallel output is bit-for-bit identical to serial. Safe to call
// concurrently with running kernels — in-flight operations keep the width
// they started with.
func SetParallelism(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	parWidth.Store(int32(n))
}

// grabPool returns the submission queue, growing the worker pool on demand
// to serve the given width. Workers are spawned lazily on the first parallel
// kernel and persist for the life of the process (an idle worker costs only
// its stack).
func grabPool(width int) chan func() {
	parMu.Lock()
	defer parMu.Unlock()
	if parQueue == nil {
		parQueue = make(chan func(), 128)
	}
	for ; parWorkers < width-1; parWorkers++ {
		//lint:ignore golife deliberate process-lifetime worker pool: parQueue is never closed, workers die with the process (see doc comment above)
		go func() {
			//lint:ignore determinism work-distribution queue: each task writes a disjoint shard and completion is gated on a WaitGroup, so arrival order cannot affect results
			for task := range parQueue {
				task()
			}
		}()
	}
	return parQueue
}

// minShardFlops is the approximate multiply-add count below which the
// handoff to a worker costs more than the work itself; jobs smaller than
// two shards' worth run inline on the caller. Variable so the property
// tests can force tiny matrices through the parallel path.
var minShardFlops = 1 << 15

// shardWidth returns the fan-out width for a kernel over n output rows and
// ~flops multiply-adds. Small enough to inline at every kernel call site, so
// the common serial case (width 1) costs one atomic load and no allocation —
// callers run their row kernel directly when it returns 1 and only build the
// parallelRows closure on the parallel path.
func shardWidth(n, flops int) int {
	if n <= 1 || flops < 2*minShardFlops {
		return 1
	}
	width := int(parWidth.Load())
	if width > n {
		width = n
	}
	if most := flops / minShardFlops; width > most {
		width = most
	}
	return width
}

// parallelRows splits the row range [0, n) into width contiguous shards and
// runs fn(lo, hi) for each, using up to width-1 pool workers plus the
// calling goroutine. width comes from shardWidth and must be > 1. fn must be
// a leaf kernel (it must not call back into parallelRows) and must touch
// only rows [lo, hi) of its output.
func parallelRows(width, n int, fn func(lo, hi int)) {
	queue := grabPool(width)
	chunk := (n + width - 1) / width
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		lo, hi := lo, hi
		queue <- func() {
			defer wg.Done()
			fn(lo, hi)
		}
	}
	fn(0, chunk)
	wg.Wait()
}
