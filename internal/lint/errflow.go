package lint

import (
	"go/ast"
	"go/types"
)

// ErrFlow enforces the query-path error contract (DESIGN.md §15): every
// error produced on the oracle seam — oracle.Interface's Query/QueryBatch,
// the planner's probe and coalescer methods, and the core entry points that
// wrap them — must be checked, propagated, or explicitly suppressed on
// every path. A dropped oracle error silently converts a failed probe into
// a wrong hyperplane sign, which Algorithm 2 then bakes into the recovered
// key, so the analyzer treats three shapes as findings: the call used as a
// bare statement (the error never lands anywhere), the error assigned to _
// (landed and discarded), and an error variable that a path can carry to a
// return or the function end without ever reading it — including the
// overwrite case, where a second assignment clobbers an unchecked error.
//
// The analysis runs on the shared CFG (cfg.go): binding an error generates
// an obligation, any read of the variable (a nil check, a return, an
// argument position, a wrap) discharges it, and the may-reach solver flags
// exits an unread obligation survives to. A read inside a defer discharges
// globally, mirroring poolpair's deferred-release rule. Only variables
// declared in the function under analysis are tracked: an error captured
// from an enclosing scope is the outer function's obligation.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "oracle-seam errors must be checked or propagated on all paths",
	Run:  runErrFlow,
}

// errSources maps functions whose error result carries oracle-seam failures
// (package path -> names). Interface methods resolve to the declaring
// interface's package, so calls through oracle.Interface match here.
var errSources = map[string]map[string]bool{
	"dnnlock/internal/oracle": {"Query": true, "QueryBatch": true},
	"dnnlock/internal/core": {
		"query": true, "queryBatch": true,
		"multi": true, "multiDirect": true, "multiScalar": true, "multiMemo": true,
		"queryRetry": true, "queryBatchRetry": true,
		"submit": true, "single": true,
		"parallelForErr": true,
		"Run": true, "Monolithic": true, "Resume": true, "runFrom": true,
		"runSite": true, "relearnBySite": true,
		"keyBitInference": true, "keyBitInferenceSpanned": true, "probeBit": true,
		"learningAttack": true, "errorCorrection": true,
	},
	"dnnlock/internal/harness": {"RunTable1": true, "RunRobustness": true},
}

func runErrFlow(p *Pass) {
	for _, f := range p.Unit.Files {
		for _, fn := range functionNodes(f) {
			p.errFlowRegion(fn)
		}
	}
}

// funcNode is one function under analysis: the declaration or literal node
// (whose extent bounds "declared here", so named results count as local)
// and its body.
type funcNode struct {
	node ast.Node
	typ  *ast.FuncType
	body *ast.BlockStmt
}

// functionNodes returns every function in the file with a body.
func functionNodes(f *ast.File) []funcNode {
	var out []funcNode
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Body != nil {
				out = append(out, funcNode{node: v, typ: v.Type, body: v.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcNode{node: v, typ: v.Type, body: v.Body})
		}
		return true
	})
	return out
}

// errBind is one tracked error obligation: the source call and the variable
// its error result landed in.
type errBind struct {
	call *ast.CallExpr
	name string // display name, e.g. "oracle.Query"
	obj  types.Object
	node ast.Node // the binding statement (CFG gen site)
}

func (p *Pass) errFlowRegion(fn funcNode) {
	binds := p.collectErrBinds(fn)
	if len(binds) == 0 {
		return
	}
	g := p.cfgOf(fn.body)

	// A read inside any defer (error inspected in a cleanup closure)
	// discharges the obligation on every exit, like a deferred Put.
	deferRead := make([]bool, len(binds))
	for i, b := range binds {
		deferRead[i] = p.deferredErrRead(fn.body, b.obj)
	}

	prob := &FlowProblem{CFG: g, Facts: len(binds), May: true,
		Gen: map[ast.Node][]int{}, Kill: map[ast.Node][]int{}}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			for i, b := range binds {
				if p.nodeReadsErr(n, fn, b.obj) {
					prob.Kill[n] = append(prob.Kill[n], i)
				}
			}
		}
	}
	for i, b := range binds {
		blk, idx := g.FindNode(b.call.Pos())
		if blk == nil {
			continue
		}
		prob.Gen[blk.Nodes[idx]] = append(prob.Gen[blk.Nodes[idx]], i)
	}
	res := prob.Solve()

	// Overwrite: a second write to the same variable while an earlier
	// obligation is still outstanding loses that error unchecked.
	for _, blk := range g.Blocks {
		if !blk.Reachable {
			continue
		}
		for idx, n := range blk.Nodes {
			for i, b := range binds {
				if n == b.node {
					continue
				}
				if !p.nodeWritesObj(n, b.obj) || p.nodeReadsErr(n, fn, b.obj) {
					continue
				}
				if res.Before(blk, idx).Has(i) {
					p.Report(n.Pos(), "error from %s (line %d) is overwritten before it is checked",
						b.name, p.Fset.Position(b.call.Pos()).Line)
				}
			}
		}
	}

	for i, b := range binds {
		if deferRead[i] {
			continue
		}
		p.reportErrPaths(g, res, prob, i, b)
	}
}

// reportErrPaths flags every reachable exit an unread obligation survives
// to: a return statement that does not itself read the variable, or the
// fall-through end of the function.
func (p *Pass) reportErrPaths(g *CFG, res *FlowResult, prob *FlowProblem, i int, b *errBind) {
	line := p.Fset.Position(b.call.Pos()).Line
	for _, blk := range g.Blocks {
		if !blk.Reachable {
			continue
		}
		for idx, n := range blk.Nodes {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				continue
			}
			if !res.Before(blk, idx).Has(i) || killsFact(prob.Kill[n], i) {
				continue
			}
			p.Report(ret.Pos(), "error from %s (line %d) is not checked on this return path", b.name, line)
		}
	}
	if g.FallsOff != nil && g.FallsOff.Reachable && res.Out[g.FallsOff].Has(i) {
		p.Report(b.call.Pos(), "error from %s is never checked before the function ends", b.name)
	}
}

// collectErrBinds finds err-source calls whose statements live directly in
// this region, reporting immediately dropped errors and tracking bound
// ones. Only bindings to variables declared inside this function (its
// signature counts, so named results are local) become obligations.
func (p *Pass) collectErrBinds(fn funcNode) []*errBind {
	var out []*errBind
	walkRegion(fn.body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if name, hit := p.errSourceCall(call); hit {
					p.ReportFix(call.Pos(), p.wrapErrFix(fn, st, call),
						"error result of %s is discarded: check it or propagate it", name)
				}
			}
		case *ast.AssignStmt:
			for ri, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				name, hit := p.errSourceCall(call)
				if !hit {
					continue
				}
				targets := assignTargets(st, ri, len(st.Rhs))
				for _, lhs := range targets {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if !p.isErrorExpr(id) {
						continue
					}
					if id.Name == "_" {
						p.Report(call.Pos(), "error result of %s is assigned to _: check it or propagate it", name)
						continue
					}
					obj := p.Unit.Info.Defs[id]
					if obj == nil {
						obj = p.Unit.Info.Uses[id]
					}
					if obj == nil || obj.Pos() < fn.node.Pos() || obj.Pos() > fn.node.End() {
						continue // captured from an enclosing function: its obligation
					}
					out = append(out, &errBind{call: call, name: name, obj: obj, node: st})
				}
			}
		}
	})
	return out
}

// assignTargets returns the LHS expressions that receive the error result
// of RHS index ri: the last element for a tuple assignment (the tracked
// sources all return the error last), the positional element for a
// parallel assignment.
func assignTargets(st *ast.AssignStmt, ri, nrhs int) []ast.Expr {
	if nrhs == 1 && len(st.Lhs) > 1 {
		return st.Lhs[len(st.Lhs)-1:]
	}
	if ri < len(st.Lhs) {
		return st.Lhs[ri : ri+1]
	}
	return nil
}

// isErrorExpr reports whether the identifier's type is error. The blank
// identifier is resolved through the assignment's tuple type, which go/types
// records in Defs with a nil object — fall back to matching the name when
// type info is absent.
func (p *Pass) isErrorExpr(id *ast.Ident) bool {
	if id.Name == "_" {
		return true // callers pair this with tuple position of an err source
	}
	obj := p.Unit.Info.Defs[id]
	if obj == nil {
		obj = p.Unit.Info.Uses[id]
	}
	if obj == nil || obj.Type() == nil {
		return false
	}
	return types.Identical(obj.Type(), types.Universe.Lookup("error").Type())
}

// errSourceCall reports whether call targets a tracked error source.
func (p *Pass) errSourceCall(call *ast.CallExpr) (string, bool) {
	return p.callIn(call, errSources)
}

// nodeReadsErr reports whether one CFG element reads the error variable:
// any mention outside a plain-identifier assignment target counts (a nil
// check, an argument, a return value, a wrap). The scan descends into
// nested closures — a goroutine or deferred closure inspecting the error
// discharges at the statement creating it. A bare return reads every named
// result implicitly.
func (p *Pass) nodeReadsErr(n ast.Node, fn funcNode, obj types.Object) bool {
	if obj == nil {
		return false
	}
	if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 0 && namedResult(fn, obj) {
		return true
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if as, ok := c.(*ast.AssignStmt); ok {
			// Visit RHS and non-ident LHS (index/selector targets read their
			// base); skip plain ident targets, which are pure writes.
			for _, e := range as.Rhs {
				if p.exprMentionsObj(e, obj) {
					found = true
					return false
				}
			}
			for _, lhs := range as.Lhs {
				if _, plain := lhs.(*ast.Ident); !plain && p.exprMentionsObj(lhs, obj) {
					found = true
					return false
				}
			}
			return false
		}
		if id, ok := c.(*ast.Ident); ok {
			o := p.Unit.Info.Uses[id]
			if o == nil {
				o = p.Unit.Info.Defs[id]
			}
			if o == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// nodeWritesObj reports whether the element assigns to obj through a plain
// identifier target.
func (p *Pass) nodeWritesObj(n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		as, ok := c.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			o := p.Unit.Info.Uses[id]
			if o == nil {
				o = p.Unit.Info.Defs[id]
			}
			if o == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func (p *Pass) exprMentionsObj(e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			o := p.Unit.Info.Uses[id]
			if o == nil {
				o = p.Unit.Info.Defs[id]
			}
			if o == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// namedResult reports whether obj is one of the function's named results.
func namedResult(fn funcNode, obj types.Object) bool {
	if fn.typ.Results == nil {
		return false
	}
	for _, fld := range fn.typ.Results.List {
		for _, name := range fld.Names {
			if name.Pos() == obj.Pos() {
				return true
			}
		}
	}
	return false
}

// deferredErrRead reports whether any defer in the region reads obj.
func (p *Pass) deferredErrRead(body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if p.exprMentionsObj(d.Call, obj) {
			found = true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(c ast.Node) bool {
				if id, ok := c.(*ast.Ident); ok {
					o := p.Unit.Info.Uses[id]
					if o == obj {
						found = true
					}
				}
				return !found
			})
		}
		return true
	})
	return found
}

// wrapErrFix offers the dropped-error rewrite when it is unconditionally
// safe: the dropped call returns exactly one value (the error) and the
// enclosing function's results are exactly one error, so
// `if err := f(); err != nil { return err }` type-checks without inventing
// zero values. Otherwise no fix is attached and the finding must be fixed
// by hand.
func (p *Pass) wrapErrFix(fn funcNode, st *ast.ExprStmt, call *ast.CallExpr) *SuggestedFix {
	tv, ok := p.Unit.Info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if _, isTuple := tv.Type.(*types.Tuple); isTuple {
		return nil // multi-result call: the wrap would drop siblings
	}
	if fn.typ.Results == nil || len(fn.typ.Results.List) != 1 || len(fn.typ.Results.List[0].Names) > 1 {
		return nil
	}
	rid, ok := fn.typ.Results.List[0].Type.(*ast.Ident)
	if !ok || rid.Name != "error" {
		return nil
	}
	return &SuggestedFix{
		Message: "wrap the call and propagate its error",
		Edits: []TextEdit{
			{Pos: st.Pos(), End: st.Pos(), NewText: "if err := "},
			{Pos: st.End(), End: st.End(), NewText: "; err != nil {\n\treturn err\n}"},
		},
	}
}
