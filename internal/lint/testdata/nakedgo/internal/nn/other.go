// other.go is in the nn package but is not slice.go: go statements here are
// flagged.
package nn

func rogueFanOut(fn func()) {
	go fn() // want "raw go statement outside the sanctioned worker-pool sites"
}
