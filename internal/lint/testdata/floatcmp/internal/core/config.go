// Package core mirrors the real internal/core/config.go path: this file is
// on the floatcmp allowlist (zero-value defaulting is an exact-sentinel
// check), so nothing here is flagged.
package core

type Config struct {
	Epsilon   float64
	LearnRate float64
}

func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 0.5
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.05
	}
	return c
}
