package nn

import (
	"math"

	"dnnlock/internal/tensor"
)

// MaxPool2D is a channel-wise max pool over CHW-flattened inputs.
type MaxPool2D struct {
	C, InH, InW int
	K, Stride   int
	OutH, OutW  int

	lastArg []int // training cache: flat input index of each output max
	rows    int
}

// NewMaxPool2D constructs a k×k max pool with the given stride.
func NewMaxPool2D(c, inH, inW, k, stride int) *MaxPool2D {
	return &MaxPool2D{
		C: c, InH: inH, InW: inW, K: k, Stride: stride,
		OutH: (inH-k)/stride + 1, OutW: (inW-k)/stride + 1,
	}
}

func (m *MaxPool2D) Name() string { return "maxpool2d" }

// InSize returns C·H·W.
func (m *MaxPool2D) InSize() int { return m.C * m.InH * m.InW }

// OutSize returns C·OH·OW.
func (m *MaxPool2D) OutSize() int { return m.C * m.OutH * m.OutW }

// forwardArgInto pools one example into y (length OutSize), recording the
// argmax input index per output in arg when arg is non-nil. The window scan
// keeps the (ky, kx) order and strict > comparison of the original gather,
// so ties resolve to the same index; only the index arithmetic is hoisted.
func (m *MaxPool2D) forwardArgInto(x, y []float64, arg []int) {
	o := 0
	for c := 0; c < m.C; c++ {
		inBase := c * m.InH * m.InW
		for oy := 0; oy < m.OutH; oy++ {
			rowBase := inBase + oy*m.Stride*m.InW
			if m.K == 2 {
				// 2×2 window unrolled in the same (ky, kx) scan order, so
				// ties resolve to the same first-wins index.
				for ox := 0; ox < m.OutW; ox++ {
					winBase := rowBase + ox*m.Stride
					best, bestIdx := math.Inf(-1), -1
					if v := x[winBase]; v > best {
						best, bestIdx = v, winBase
					}
					if v := x[winBase+1]; v > best {
						best, bestIdx = v, winBase+1
					}
					if v := x[winBase+m.InW]; v > best {
						best, bestIdx = v, winBase+m.InW
					}
					if v := x[winBase+m.InW+1]; v > best {
						best, bestIdx = v, winBase+m.InW+1
					}
					y[o] = best
					if arg != nil {
						arg[o] = bestIdx
					}
					o++
				}
				continue
			}
			for ox := 0; ox < m.OutW; ox++ {
				winBase := rowBase + ox*m.Stride
				best := math.Inf(-1)
				bestIdx := -1
				for ky := 0; ky < m.K; ky++ {
					idx := winBase + ky*m.InW
					for kx := 0; kx < m.K; kx++ {
						if v := x[idx]; v > best {
							best = v
							bestIdx = idx
						}
						idx++
					}
				}
				y[o] = best
				if arg != nil {
					arg[o] = bestIdx
				}
				o++
			}
		}
	}
}

// forwardArg pools one example and reports the argmax input index per output.
func (m *MaxPool2D) forwardArg(x []float64) (y []float64, arg []int) {
	y = make([]float64, m.OutSize())
	arg = make([]int, m.OutSize())
	m.forwardArgInto(x, y, arg)
	return y, arg
}

// Forward pools one example. The argmax indices are not materialized.
func (m *MaxPool2D) Forward(x []float64, _ *Trace) []float64 {
	checkSize("maxpool2d", m.InSize(), len(x))
	y := make([]float64, m.OutSize())
	m.forwardArgInto(x, y, nil)
	return y
}

// ForwardBatch pools each row, writing straight into the output rows.
func (m *MaxPool2D) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	// forwardArgInto assigns every output element, so a pooled buffer is safe.
	out := tensor.GetMatrix(x.Rows, m.OutSize())
	for r := 0; r < x.Rows; r++ {
		m.forwardArgInto(x.Row(r), out.Row(r), nil)
	}
	return out
}

// TrainForward pools and caches argmax indices for Backward. The index
// cache is reused across batches once grown to the largest batch seen.
func (m *MaxPool2D) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	m.rows = x.Rows
	need := x.Rows * m.OutSize()
	if cap(m.lastArg) < need {
		m.lastArg = make([]int, need)
	}
	m.lastArg = m.lastArg[:need]
	out := tensor.New(x.Rows, m.OutSize())
	for r := 0; r < x.Rows; r++ {
		m.forwardArgInto(x.Row(r), out.Row(r), m.lastArg[r*m.OutSize():(r+1)*m.OutSize()])
	}
	return out
}

// Backward routes each output gradient to its argmax input.
func (m *MaxPool2D) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if m.lastArg == nil {
		panic("nn: MaxPool2D.Backward before TrainForward")
	}
	dx := tensor.GetMatrixZero(dy.Rows, m.InSize())
	for r := 0; r < dy.Rows; r++ {
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		args := m.lastArg[r*m.OutSize() : (r+1)*m.OutSize()]
		for o, g := range dyr {
			dxr[args[o]] += g
		}
	}
	return dx
}

// JVP selects tangent rows by the value path's argmax (exact inside a linear
// region, where the argmax is locally constant).
func (m *MaxPool2D) JVP(x []float64, j *tensor.Matrix, _ *JVPTrace) ([]float64, *tensor.Matrix) {
	y, arg := m.forwardArg(x)
	jy := tensor.New(m.OutSize(), j.Cols)
	for o, idx := range arg {
		jy.SetRow(o, j.Row(idx))
	}
	return y, jy
}

// Params returns nil.
func (m *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool averages each channel's spatial plane into one scalar.
type GlobalAvgPool struct {
	C, H, W int
}

// NewGlobalAvgPool constructs the pool.
func NewGlobalAvgPool(c, h, w int) *GlobalAvgPool { return &GlobalAvgPool{C: c, H: h, W: w} }

func (g *GlobalAvgPool) Name() string { return "global_avg_pool" }

// InSize returns C·H·W.
func (g *GlobalAvgPool) InSize() int { return g.C * g.H * g.W }

// OutSize returns C.
func (g *GlobalAvgPool) OutSize() int { return g.C }

// Forward averages each channel.
func (g *GlobalAvgPool) Forward(x []float64, _ *Trace) []float64 {
	checkSize("global_avg_pool", g.InSize(), len(x))
	plane := g.H * g.W
	y := make([]float64, g.C)
	for c := 0; c < g.C; c++ {
		s := 0.0
		for i := c * plane; i < (c+1)*plane; i++ {
			s += x[i]
		}
		y[c] = s / float64(plane)
	}
	return y
}

// ForwardBatch averages each row's channels.
func (g *GlobalAvgPool) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	return forwardBatchViaSingle(g, x)
}

// TrainForward is ForwardBatch (the map is linear; no cache needed).
func (g *GlobalAvgPool) TrainForward(x *tensor.Matrix) *tensor.Matrix {
	return g.ForwardBatch(x)
}

// Backward spreads each channel gradient evenly over its plane.
func (g *GlobalAvgPool) Backward(dy *tensor.Matrix) *tensor.Matrix {
	plane := g.H * g.W
	inv := 1 / float64(plane)
	// Every element of dx is assigned below, so the pooled buffer's
	// arbitrary contents never show through.
	dx := tensor.GetMatrix(dy.Rows, g.InSize())
	for r := 0; r < dy.Rows; r++ {
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		for c := 0; c < g.C; c++ {
			gv := dyr[c] * inv
			for i := c * plane; i < (c+1)*plane; i++ {
				dxr[i] = gv
			}
		}
	}
	return dx
}

// JVP averages tangent rows channel-wise.
func (g *GlobalAvgPool) JVP(x []float64, j *tensor.Matrix, _ *JVPTrace) ([]float64, *tensor.Matrix) {
	y := g.Forward(x, nil)
	plane := g.H * g.W
	inv := 1 / float64(plane)
	jy := tensor.New(g.C, j.Cols)
	for c := 0; c < g.C; c++ {
		dst := jy.Row(c)
		for i := c * plane; i < (c+1)*plane; i++ {
			src := j.Row(i)
			for t := range dst {
				dst[t] += src[t] * inv
			}
		}
	}
	return y, jy
}

// Params returns nil.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// MeanTokens averages T tokens of width D into a single D-vector (the
// V-Transformer's classification head input).
type MeanTokens struct {
	T, D int
}

// NewMeanTokens constructs the token average.
func NewMeanTokens(t, d int) *MeanTokens { return &MeanTokens{T: t, D: d} }

func (m *MeanTokens) Name() string { return "mean_tokens" }

// InSize returns T·D.
func (m *MeanTokens) InSize() int { return m.T * m.D }

// OutSize returns D.
func (m *MeanTokens) OutSize() int { return m.D }

// Forward averages tokens.
func (m *MeanTokens) Forward(x []float64, _ *Trace) []float64 {
	checkSize("mean_tokens", m.InSize(), len(x))
	y := make([]float64, m.D)
	for t := 0; t < m.T; t++ {
		for d := 0; d < m.D; d++ {
			y[d] += x[t*m.D+d]
		}
	}
	inv := 1 / float64(m.T)
	for d := range y {
		y[d] *= inv
	}
	return y
}

// ForwardBatch averages each row's tokens.
func (m *MeanTokens) ForwardBatch(x *tensor.Matrix) *tensor.Matrix {
	return forwardBatchViaSingle(m, x)
}

// TrainForward is ForwardBatch (linear map).
func (m *MeanTokens) TrainForward(x *tensor.Matrix) *tensor.Matrix { return m.ForwardBatch(x) }

// Backward spreads gradients evenly over tokens.
func (m *MeanTokens) Backward(dy *tensor.Matrix) *tensor.Matrix {
	inv := 1 / float64(m.T)
	// Every element of dx is assigned below, so the pooled buffer's
	// arbitrary contents never show through.
	dx := tensor.GetMatrix(dy.Rows, m.InSize())
	for r := 0; r < dy.Rows; r++ {
		dyr := dy.Row(r)
		dxr := dx.Row(r)
		for t := 0; t < m.T; t++ {
			for d := 0; d < m.D; d++ {
				dxr[t*m.D+d] = dyr[d] * inv
			}
		}
	}
	return dx
}

// JVP averages tangent rows token-wise.
func (m *MeanTokens) JVP(x []float64, j *tensor.Matrix, _ *JVPTrace) ([]float64, *tensor.Matrix) {
	y := m.Forward(x, nil)
	inv := 1 / float64(m.T)
	jy := tensor.New(m.D, j.Cols)
	for t := 0; t < m.T; t++ {
		for d := 0; d < m.D; d++ {
			src := j.Row(t*m.D + d)
			dst := jy.Row(d)
			for c := range dst {
				dst[c] += src[c] * inv
			}
		}
	}
	return y, jy
}

// Params returns nil.
func (m *MeanTokens) Params() []*Param { return nil }
