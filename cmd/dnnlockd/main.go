// Command dnnlockd is the attack-service daemon: a long-running HTTP server
// that accepts DNN logic-locking attack jobs (model + lock config +
// oracle/farm spec) as JSON, executes them on a sharded worker pool with
// bounded queues, and serves live status, serialized checkpoints, and span
// traces per job. See OPERATIONS.md for the full API and DESIGN.md §17 for
// the design.
//
// Usage:
//
//	dnnlockd [-addr :8080] [-workers 2] [-queue 8] [-state DIR]
//	         [-drain-timeout 60s] [-v]
//
// On SIGTERM or SIGINT the daemon drains gracefully: intake stops (503),
// running decrypt jobs suspend at their next checkpoint boundary, monolithic
// jobs early-stop their fit, queued jobs are requeued for the next start,
// and the HTTP server shuts down. With -state, every job survives the
// restart and interrupted jobs resume automatically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dnnlock/internal/obs"
	"dnnlock/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 2, "worker pool shards (one attack runs per shard at a time)")
	queue := flag.Int("queue", 8, "queue depth per shard; a full shard rejects submits with 429")
	state := flag.String("state", "", "state directory for job persistence across restarts (empty = in-memory)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max time to wait for workers during shutdown (0 = forever)")
	verbose := flag.Bool("v", false, "debug logging (equivalent to DNNLOCK_LOG=debug)")
	flag.Parse()

	log := obs.Default(os.Stderr)
	if *verbose {
		log = obs.NewLogger(os.Stderr, slog.LevelDebug)
	}

	srv, err := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		StateDir:   *state,
		Logger:     log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnnlockd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnnlockd:", err)
		os.Exit(1)
	}
	// Scripts parse this line to find the bound port under -addr :0.
	fmt.Printf("dnnlockd listening on %s\n", ln.Addr())
	log.Info("daemon started", "addr", ln.Addr().String(), "workers", *workers,
		"queue", *queue, "state", *state)

	httpSrv := &http.Server{Handler: srv.Handler()}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	//lint:ignore nakedgo shutdown watcher; exits after the signal arrives and drain+shutdown complete
	go func() {
		defer close(done)
		sig := <-sigCh
		log.Info("signal received, draining", "signal", sig.String())
		if !srv.Drain(*drainTimeout) {
			log.Warn("drain incomplete, shutting down anyway")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dnnlockd:", err)
		os.Exit(1)
	}
	<-done
	log.Info("daemon stopped")
}
